"""Unit tests for the five-run error-bar protocol."""

import pytest

from repro.cluster import HYBRID_CONFIGS, make_paper_cluster
from repro.workloads import make_svm_workload
from repro.workloads.runner import measure_workload, measure_workload_repeated


@pytest.fixture(scope="module")
def runs():
    cluster = make_paper_cluster(3, HYBRID_CONFIGS[0])
    return measure_workload_repeated(cluster, 12, make_svm_workload(), runs=5)


class TestRepeatedRuns:
    def test_five_runs_returned(self, runs):
        assert len(runs) == 5

    def test_runs_differ_but_only_slightly(self, runs):
        totals = [run.total_seconds for run in runs]
        assert len(set(totals)) > 1  # distinct realizations
        spread = (max(totals) - min(totals)) / min(totals)
        assert spread < 0.10  # error bars, not different experiments

    def test_run_index_deterministic(self):
        cluster = make_paper_cluster(3, HYBRID_CONFIGS[0])
        workload = make_svm_workload()
        first = measure_workload(cluster, 12, workload, run_index=2)
        second = measure_workload(cluster, 12, workload, run_index=2)
        assert first.total_seconds == second.total_seconds

    def test_byte_totals_identical_across_runs(self, runs):
        reads = {round(run.stage("subtract_read").read_bytes) for run in runs}
        assert len(reads) == 1  # skew is mean-preserving per group

    def test_invalid_run_count(self):
        cluster = make_paper_cluster(1, HYBRID_CONFIGS[0])
        with pytest.raises(ValueError):
            measure_workload_repeated(cluster, 2, make_svm_workload(), runs=0)


class TestRepeatedRunsNetwork:
    """Regression: the ``network`` argument used to be silently dropped."""

    def test_network_is_forwarded_to_every_run(self):
        from repro.cluster.network import NetworkModel

        cluster = make_paper_cluster(3, HYBRID_CONFIGS[0])
        workload = make_svm_workload()
        network = NetworkModel.from_gbps(0.25)
        repeated = measure_workload_repeated(
            cluster, 12, workload, runs=2, network=network
        )
        for index, run in enumerate(repeated):
            direct = measure_workload(
                cluster, 12, workload, run_index=index, network=network
            )
            assert run.total_seconds == direct.total_seconds

    def test_throttled_network_changes_the_makespan(self):
        cluster = make_paper_cluster(3, HYBRID_CONFIGS[0])
        workload = make_svm_workload()
        from repro.cluster.network import NetworkModel

        infinite = measure_workload_repeated(cluster, 12, workload, runs=2)
        throttled = measure_workload_repeated(
            cluster, 12, workload, runs=2,
            network=NetworkModel.from_gbps(0.25),
        )
        for fast, slow in zip(infinite, throttled):
            assert slow.total_seconds > fast.total_seconds
