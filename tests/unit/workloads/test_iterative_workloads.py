"""Unit tests for the LR, SVM, and PageRank workload models."""

import pytest

from repro.errors import WorkloadError
from repro.units import GB, KB
from repro.workloads.logistic_regression import (
    LARGE_DATASET,
    LogisticRegressionParameters,
    make_logistic_regression_workload,
)
from repro.workloads.pagerank import PageRankParameters, make_pagerank_workload
from repro.workloads.svm import SvmParameters, make_svm_workload


class TestLogisticRegression:
    def test_small_dataset_cached(self):
        workload = make_logistic_regression_workload(num_slaves=10)
        assert workload.parameters["cached"] is True
        iteration = workload.stage("iteration")
        # Cached: iterations are pure compute.
        assert iteration.groups[0].channels == ()
        assert iteration.repeat == 50

    def test_large_dataset_persisted(self):
        workload = make_logistic_regression_workload(LARGE_DATASET, num_slaves=10)
        assert workload.parameters["cached"] is False
        iteration = workload.stage("iteration")
        kinds = [ch.kind for ch in iteration.groups[0].channels]
        assert kinds == ["persist_read"]
        validator = workload.stage("dataValidator")
        write_kinds = [ch.kind for ch in validator.groups[0].write_channels]
        assert write_kinds == ["persist_write"]

    def test_large_dataset_iteration_bytes(self):
        workload = make_logistic_regression_workload(LARGE_DATASET, num_slaves=10)
        iteration = workload.stage("iteration")
        # 990 GB per pass x 50 iterations.
        assert iteration.total_bytes("persist_read") == pytest.approx(
            50 * 990 * GB
        )

    def test_caching_follows_cluster_memory(self):
        # On three slaves even the small parsedData (280 GB > 3*36 GB)
        # cannot be cached.
        workload = make_logistic_regression_workload(num_slaves=3)
        assert workload.parameters["cached"] is False

    def test_partition_count_from_blocks(self):
        params = LogisticRegressionParameters()
        assert params.num_partitions == 1920  # 240 GB / 128 MB

    def test_persist_read_request_is_512kb(self):
        workload = make_logistic_regression_workload(LARGE_DATASET, num_slaves=10)
        channel = workload.stage("iteration").groups[0].read_channels[0]
        assert channel.request_size == pytest.approx(512 * KB)

    def test_invalid_parameters(self):
        with pytest.raises(WorkloadError):
            LogisticRegressionParameters(iterations=0)
        with pytest.raises(WorkloadError):
            LogisticRegressionParameters(input_bytes=0.0)


class TestSvm:
    def test_stage_sequence(self):
        workload = make_svm_workload()
        assert [s.name for s in workload.stages] == [
            "dataValidator", "iteration", "subtract_write", "subtract_read",
        ]

    def test_phase_groups_merge_subtract(self):
        workload = make_svm_workload()
        groups = workload.parameters["phase_groups"]
        assert groups["subtract"] == ["subtract_write", "subtract_read"]

    def test_iteration_in_memory(self):
        workload = make_svm_workload()
        iteration = workload.stage("iteration")
        assert iteration.groups[0].channels == ()
        assert iteration.repeat == 10

    def test_shuffle_totals(self):
        workload = make_svm_workload()
        assert workload.stage("subtract_write").total_bytes(
            "shuffle_write"
        ) == pytest.approx(170 * GB)
        assert workload.stage("subtract_read").total_bytes(
            "shuffle_read"
        ) == pytest.approx(170 * GB)

    def test_reducer_request_size(self):
        params = SvmParameters()
        plan = params.shuffle_plan
        # (170 GB / 400) / 1200 mappers.
        assert plan.read_request_size == pytest.approx(
            170 * GB / 400 / 1200
        )

    def test_invalid_parameters(self):
        with pytest.raises(WorkloadError):
            SvmParameters(num_reducers=0)
        with pytest.raises(WorkloadError):
            SvmParameters(iterations=0)


class TestPageRank:
    def test_stage_sequence(self):
        workload = make_pagerank_workload()
        assert [s.name for s in workload.stages] == [
            "graphLoader", "iteration", "save",
        ]

    def test_iteration_reads_and_writes_graph(self):
        workload = make_pagerank_workload()
        iteration = workload.stage("iteration")
        group = iteration.groups[0]
        assert [ch.kind for ch in group.read_channels] == ["persist_read"]
        assert [ch.kind for ch in group.write_channels] == ["persist_write"]
        assert iteration.repeat == 10

    def test_iteration_moves_420gb_each_way(self):
        workload = make_pagerank_workload()
        iteration = workload.stage("iteration")
        assert iteration.total_bytes("persist_read") == pytest.approx(
            10 * 420 * GB
        )
        assert iteration.total_bytes("persist_write") == pytest.approx(
            10 * 420 * GB
        )

    def test_loader_persists_graph(self):
        workload = make_pagerank_workload()
        loader = workload.stage("graphLoader")
        assert loader.total_bytes("persist_write") == pytest.approx(420 * GB)

    def test_save_writes_replicated_ranks(self):
        workload = make_pagerank_workload()
        save = workload.stage("save")
        assert save.total_bytes("hdfs_write") == pytest.approx(0.8 * GB)

    def test_invalid_parameters(self):
        with pytest.raises(WorkloadError):
            PageRankParameters(num_partitions=0)
        with pytest.raises(WorkloadError):
            PageRankParameters(iterations=0)
