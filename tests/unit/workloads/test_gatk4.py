"""Unit tests for the GATK4 workload model (Table IV and Section III/V-A)."""

import pytest

from repro.errors import WorkloadError
from repro.units import GB, KB, MB
from repro.workloads.gatk4 import (
    Gatk4Parameters,
    make_br_stage,
    make_gatk4_workload,
    make_md_stage,
    make_sf_stage,
)


@pytest.fixture()
def params():
    return Gatk4Parameters()


@pytest.fixture()
def workload():
    return make_gatk4_workload()


class TestParameters:
    def test_default_geometry(self, params):
        assert params.num_mappers == 973
        assert params.shuffle_plan.num_reducers == 12667

    def test_input_size_near_122gb(self, params):
        assert params.input_bytes / GB == pytest.approx(121.6, abs=0.1)

    def test_invalid_sizes_rejected(self):
        with pytest.raises(WorkloadError):
            Gatk4Parameters(input_bytes=0.0)
        with pytest.raises(WorkloadError):
            Gatk4Parameters(md_lambda=0.5)

    def test_custom_coverage_scales(self):
        small = Gatk4Parameters(
            input_bytes=100 * 128 * MB, shuffle_bytes=34 * GB, output_bytes=17 * GB
        )
        assert small.num_mappers == 100


class TestTableIV:
    """Per-stage I/O sizes in GB: the rows of Table IV."""

    def test_md_row(self, workload):
        stage = workload.stage("MD")
        assert stage.total_bytes("hdfs_read") / GB == pytest.approx(121.6, abs=0.1)
        assert stage.total_bytes("shuffle_write") / GB == pytest.approx(334.0)
        assert stage.total_bytes("shuffle_read") == 0.0
        assert stage.total_bytes("hdfs_write") == 0.0

    def test_br_row(self, workload):
        stage = workload.stage("BR")
        assert stage.total_bytes("hdfs_read") / GB == pytest.approx(121.6, abs=0.1)
        assert stage.total_bytes("shuffle_read") / GB == pytest.approx(334.0)
        assert stage.total_bytes("shuffle_write") == 0.0
        assert stage.total_bytes("hdfs_write") == 0.0

    def test_sf_row(self, workload):
        stage = workload.stage("SF")
        assert stage.total_bytes("hdfs_read") / GB == pytest.approx(121.6, abs=0.1)
        assert stage.total_bytes("shuffle_read") / GB == pytest.approx(334.0)
        # Physical HDFS writes include the replication factor 2.
        assert stage.total_bytes("hdfs_write") / GB == pytest.approx(332.0)


class TestStageStructure:
    def test_md_single_map_group(self, params):
        stage = make_md_stage(params)
        assert [g.name for g in stage.groups] == ["map"]
        assert stage.num_tasks == 973

    def test_br_two_groups(self, params):
        stage = make_br_stage(params)
        assert {g.name for g in stage.groups} == {"shuffle", "hdfs_scan"}
        assert stage.group("shuffle").count == 12667
        assert stage.group("hdfs_scan").count == 973

    def test_sf_has_hdfs_write(self, params):
        stage = make_sf_stage(params)
        shuffle_group = stage.group("shuffle")
        assert shuffle_group.write_channels[0].kind == "hdfs_write"

    def test_shuffle_read_request_size(self, params):
        stage = make_br_stage(params)
        channel = stage.group("shuffle").read_channels[0]
        assert channel.request_size == pytest.approx(28.4 * KB, rel=0.02)

    def test_md_write_chunk_size(self, params):
        stage = make_md_stage(params)
        channel = stage.group("map").write_channels[0]
        assert channel.request_size == pytest.approx(351.5 * MB, rel=0.01)

    def test_lambda_encodes_compute(self, params):
        # MD: lambda = 12 on a 128 MB read at T = 33 MB/s -> compute =
        # 11 * 3.879 s.
        stage = make_md_stage(params)
        group = stage.group("map")
        io_seconds = 128 * MB / (33 * MB)
        assert group.compute_seconds == pytest.approx(11 * io_seconds, rel=0.01)

    def test_br_shuffle_lambda_20(self, params):
        group = make_br_stage(params).group("shuffle")
        io_seconds = group.read_channels[0].uncontended_seconds()
        total = io_seconds + group.compute_seconds
        assert total / io_seconds == pytest.approx(20.0, rel=0.01)

    def test_workload_order(self, workload):
        assert [s.name for s in workload.stages] == ["MD", "BR", "SF"]
