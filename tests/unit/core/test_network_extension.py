"""Unit tests for the network-limit model extension.

The paper skips network terms because 10 Gb/s links never bind for its
workloads (Section III-B1); the extension adds a virtual "network" device
group for shuffle reads and must (a) leave all paper predictions unchanged
at 10 Gb/s and (b) reproduce Trivedi et al.'s 1 Gb/s sensitivity.
"""

import pytest

from repro.cluster import HYBRID_CONFIGS, make_paper_cluster
from repro.cluster.network import TEN_GBPS
from repro.errors import ModelError

ONE_GBPS = TEN_GBPS / 10.0


@pytest.fixture(scope="module")
def devices():
    cluster = make_paper_cluster(1, HYBRID_CONFIGS[0])
    node = cluster.slaves[0]
    return {"hdfs": node.hdfs_device, "local": node.local_device}


class TestTenGigabitNeverBinds:
    def test_predictions_unchanged(self, gatk4_predictor, devices):
        plain = gatk4_predictor.model_for_devices(devices)
        with_net = gatk4_predictor.model_for_devices(
            devices, network_bandwidth=TEN_GBPS
        )
        for nodes in (3, 10):
            for cores in (12, 36):
                assert with_net.runtime(nodes, cores) == pytest.approx(
                    plain.runtime(nodes, cores)
                )

    def test_bottlenecks_unchanged(self, gatk4_predictor, devices):
        with_net = gatk4_predictor.model_for_devices(
            devices, network_bandwidth=TEN_GBPS
        )
        prediction = with_net.predict(10, 36)
        # On SSDs at 10 Gb/s, BR stays compute-bound.
        assert prediction.stage("BR").bottleneck == "scale"


class TestSlowNetworkBinds:
    def test_one_gbps_slows_sf_but_not_md(self, gatk4_predictor, devices):
        plain = gatk4_predictor.model_for_devices(devices)
        slow = gatk4_predictor.model_for_devices(
            devices, network_bandwidth=ONE_GBPS
        )
        fast_run = plain.predict(10, 36)
        slow_run = slow.predict(10, 36)
        # SF's light compute leaves its shuffle read exposed to the wire...
        assert slow_run.stage("SF").t_stage > 1.8 * fast_run.stage("SF").t_stage
        assert slow_run.stage("SF").bottleneck == "read"
        # ...while MD moves no shuffle-read bytes at all...
        assert slow_run.stage("MD").t_stage == pytest.approx(
            fast_run.stage("MD").t_stage
        )
        # ...and BR's lambda = 20 of compute still hides the slow wire
        # (its network floor of ~280 s sits below t_scale ~ 340 s).
        assert slow_run.stage("BR").bottleneck == "scale"

    def test_trivedi_observation_direction(self, gatk4_predictor, devices):
        # [34]: 1 Gb/s -> 10 Gb/s cuts Spark runtime by up to 2.5x.  GATK4
        # at P = 36 is only partially network-exposed; its SF stage shows
        # the ~2.2x swing and the whole app a milder one.
        one_model = gatk4_predictor.model_for_devices(
            devices, network_bandwidth=ONE_GBPS
        )
        ten_model = gatk4_predictor.model_for_devices(
            devices, network_bandwidth=TEN_GBPS
        )
        sf_ratio = one_model.predict(10, 36).stage("SF").t_stage / (
            ten_model.predict(10, 36).stage("SF").t_stage
        )
        app_ratio = one_model.runtime(10, 36) / ten_model.runtime(10, 36)
        assert 1.8 < sf_ratio < 2.6
        assert 1.1 < app_ratio < 2.5

    def test_network_floor_value(self, gatk4_predictor, devices):
        from repro.units import GB

        slow = gatk4_predictor.model_for_devices(
            devices, network_bandwidth=ONE_GBPS
        )
        prediction = slow.predict(10, 36)
        # BR's network floor: 334 GB / (10 * 125 MB/s) ~ 4.8 min + fill.
        expected_floor = 334 * GB / (10 * ONE_GBPS)
        assert prediction.stage("BR").t_read_limit >= expected_floor

    def test_invalid_bandwidth_rejected(self, gatk4_predictor, devices):
        with pytest.raises(ModelError):
            gatk4_predictor.model_for_devices(devices, network_bandwidth=0.0)
