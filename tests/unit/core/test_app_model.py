"""Unit tests for the application model (sum of stages)."""

import pytest

from repro.core.app_model import ApplicationModel
from repro.core.stage_model import StageModel
from repro.core.variables import StageModelVariables
from repro.errors import ModelError


def stage(name, num_tasks=100, t_avg=2.0, delta=1.0):
    return StageModel(
        StageModelVariables(
            name=name, num_tasks=num_tasks, t_avg=t_avg, delta_scale=delta
        )
    )


@pytest.fixture()
def app():
    return ApplicationModel("app", [stage("a"), stage("b", t_avg=4.0)])


class TestConstruction:
    def test_requires_stages(self):
        with pytest.raises(ModelError):
            ApplicationModel("empty", [])

    def test_rejects_duplicate_names(self):
        with pytest.raises(ModelError):
            ApplicationModel("dup", [stage("x"), stage("x")])

    def test_stage_lookup(self, app):
        assert app.stage("a").name == "a"
        with pytest.raises(ModelError):
            app.stage("missing")

    def test_repr_lists_stages(self, app):
        assert "a" in repr(app) and "b" in repr(app)


class TestPrediction:
    def test_t_app_is_sum_of_stages(self, app):
        prediction = app.predict(2, 4)
        assert prediction.t_app == pytest.approx(
            sum(s.t_stage for s in prediction.stages)
        )

    def test_runtime_shortcut(self, app):
        assert app.runtime(2, 4) == pytest.approx(app.predict(2, 4).t_app)

    def test_stage_lookup_on_prediction(self, app):
        prediction = app.predict(2, 4)
        assert prediction.stage("b").stage_name == "b"
        with pytest.raises(ModelError):
            prediction.stage("zzz")

    def test_bottleneck_stage(self, app):
        prediction = app.predict(2, 4)
        assert prediction.bottleneck_stage.stage_name == "b"

    def test_sweep_cores(self, app):
        points = app.sweep_cores(2, [1, 2, 4])
        assert [p.cores_per_node for p in points] == [1, 2, 4]
        times = [p.t_app for p in points]
        assert times == sorted(times, reverse=True)
