"""Unit tests for Equation 1 (the per-stage model)."""

import pytest

from repro.core.stage_model import StageModel, StagePrediction
from repro.core.variables import IoChannel, StageModelVariables
from repro.errors import ModelError
from repro.units import GB, KB, MB


def make_variables(**overrides):
    defaults = dict(
        name="BR",
        num_tasks=12000,
        t_avg=9.0,
        delta_scale=5.0,
        channels=(
            IoChannel(
                kind="shuffle_read",
                total_bytes=334 * GB,
                request_size=30 * KB,
                bandwidth=15 * MB,
                is_write=False,
                device="local",
            ),
        ),
        delta_read=10.0,
    )
    defaults.update(overrides)
    return StageModelVariables(**defaults)


class TestTerms:
    def test_t_scale_formula(self):
        model = StageModel(make_variables())
        # M/(N*P) * t_avg + delta = 12000/(10*12)*9 + 5
        assert model.t_scale(10, 12) == pytest.approx(12000 / 120 * 9 + 5)

    def test_t_read_limit_formula(self):
        model = StageModel(make_variables())
        expected = 334 * GB / (10 * 15 * MB) + 9.0 + 10.0
        assert model.t_read_limit(10) == pytest.approx(expected)

    def test_t_write_limit_zero_without_writes(self):
        model = StageModel(make_variables())
        assert model.t_write_limit(10) == 0.0

    def test_t_read_limit_zero_without_reads(self):
        model = StageModel(make_variables(channels=(), delta_read=0.0))
        assert model.t_read_limit(10) == 0.0

    def test_negative_fitted_deltas_clamp_to_zero(self):
        # Regression: two-point calibration can fit delta_scale < 0; at
        # large N*P the extrapolated term went negative — a negative
        # predicted time that also stole the bottleneck label.
        model = StageModel(
            make_variables(num_tasks=4, t_avg=0.01, delta_scale=-5.0,
                           channels=(), delta_read=0.0)
        )
        assert model.t_scale(10, 24) == 0.0
        prediction = model.predict(10, 24)
        assert prediction.t_stage == 0.0
        assert prediction.bottleneck == "scale"

    def test_negative_delta_read_clamps_to_zero(self):
        model = StageModel(make_variables(delta_read=-1e9))
        assert model.t_read_limit(10) == 0.0

    def test_positive_terms_are_untouched_by_the_clamp(self):
        model = StageModel(make_variables())
        assert model.t_scale(10, 12) == 12000 / 120 * 9 + 5

    def test_invalid_operating_point(self):
        model = StageModel(make_variables())
        with pytest.raises(ModelError):
            model.t_scale(0, 12)
        with pytest.raises(ModelError):
            model.t_scale(10, 0)
        with pytest.raises(ModelError):
            model.t_read_limit(-1)


class TestMaxSelection:
    def test_scale_bound_at_low_cores(self):
        model = StageModel(make_variables())
        prediction = model.predict(10, 1)
        assert prediction.bottleneck == "scale"
        assert not prediction.io_bound
        assert prediction.t_stage == pytest.approx(prediction.t_scale)

    def test_io_bound_at_high_cores(self):
        model = StageModel(make_variables())
        prediction = model.predict(10, 36)
        assert prediction.bottleneck == "read"
        assert prediction.io_bound
        assert prediction.t_stage == pytest.approx(prediction.t_read_limit)

    def test_runtime_matches_prediction(self):
        model = StageModel(make_variables())
        assert model.runtime(10, 36) == pytest.approx(model.predict(10, 36).t_stage)

    def test_runtime_monotone_in_cores_until_saturation(self):
        model = StageModel(make_variables())
        times = [model.runtime(10, p) for p in (1, 2, 4, 8, 16, 32)]
        assert all(a >= b - 1e-9 for a, b in zip(times, times[1:]))

    def test_runtime_flat_past_saturation(self):
        model = StageModel(make_variables())
        saturation = model.saturation_cores(10)
        assert saturation is not None
        p_past = int(saturation) + 5
        assert model.runtime(10, p_past) == pytest.approx(
            model.runtime(10, p_past * 2)
        )

    def test_saturation_none_without_channels(self):
        model = StageModel(make_variables(channels=(), delta_read=0.0))
        assert model.saturation_cores(10) is None


class TestStagePrediction:
    def test_bottleneck_write(self):
        prediction = StagePrediction(
            stage_name="s", nodes=1, cores_per_node=1,
            t_scale=10.0, t_read_limit=5.0, t_write_limit=20.0,
        )
        assert prediction.bottleneck == "write"
        assert prediction.io_bound
        assert prediction.t_stage == 20.0

    def test_repr_of_model(self):
        model = StageModel(make_variables())
        assert "BR" in repr(model)


class TestShuffleAnalysisNumbers:
    """Section III-C3: 334 GB / 3 nodes / 15 MB/s = 126 minutes."""

    def test_126_minutes_on_three_slaves(self):
        variables = make_variables(delta_scale=0.0, delta_read=0.0, t_avg=0.0)
        model = StageModel(variables)
        minutes = model.t_read_limit(3) / 60.0
        assert minutes == pytest.approx(334 * 1024 / 3 / 15 / 60, rel=1e-6)
        assert minutes == pytest.approx(127.0, abs=1.5)
