"""Unit tests for model variables and per-device I/O limits."""

import pytest

from repro.core.variables import IoChannel, StageModelVariables
from repro.errors import ModelError
from repro.units import GB, KB, MB


def channel(kind="shuffle_read", total=334 * GB, rs=30 * KB, bw=15 * MB,
            is_write=False, device=""):
    return IoChannel(
        kind=kind,
        total_bytes=total,
        request_size=rs,
        bandwidth=bw,
        is_write=is_write,
        device=device,
    )


class TestIoChannel:
    def test_limit_seconds(self):
        ch = channel(total=150 * MB, bw=15 * MB)
        assert ch.limit_seconds_per_node == pytest.approx(10.0)

    def test_device_label_defaults_to_kind(self):
        assert channel().device_label == "shuffle_read"
        assert channel(device="local").device_label == "local"

    def test_negative_bytes_rejected(self):
        with pytest.raises(ModelError):
            channel(total=-1.0)

    def test_nonpositive_request_size_rejected(self):
        with pytest.raises(ModelError):
            channel(rs=0.0)

    def test_nonpositive_bandwidth_rejected(self):
        with pytest.raises(ModelError):
            channel(bw=0.0)


class TestStageModelVariables:
    def test_read_write_partition(self):
        variables = StageModelVariables(
            name="s",
            num_tasks=10,
            t_avg=1.0,
            channels=(
                channel(kind="shuffle_read"),
                channel(kind="hdfs_write", is_write=True, total=100 * GB),
            ),
        )
        assert len(variables.read_channels) == 1
        assert len(variables.write_channels) == 1
        assert variables.read_bytes == pytest.approx(334 * GB)
        assert variables.write_bytes == pytest.approx(100 * GB)

    def test_same_device_limits_add(self):
        variables = StageModelVariables(
            name="s",
            num_tasks=10,
            t_avg=1.0,
            channels=(
                channel(total=100 * MB, bw=10 * MB, device="local"),
                channel(kind="persist_read", total=50 * MB, bw=10 * MB, device="local"),
            ),
        )
        assert variables.read_limit_seconds_per_node() == pytest.approx(15.0)

    def test_different_devices_take_max(self):
        variables = StageModelVariables(
            name="s",
            num_tasks=10,
            t_avg=1.0,
            channels=(
                channel(total=100 * MB, bw=10 * MB, device="local"),
                channel(kind="hdfs_read", total=50 * MB, bw=10 * MB, device="hdfs"),
            ),
        )
        assert variables.read_limit_seconds_per_node() == pytest.approx(10.0)

    def test_no_channels_zero_limits(self):
        variables = StageModelVariables(name="s", num_tasks=10, t_avg=1.0)
        assert variables.read_limit_seconds_per_node() == 0.0
        assert variables.write_limit_seconds_per_node() == 0.0

    def test_invalid_num_tasks(self):
        with pytest.raises(ModelError):
            StageModelVariables(name="s", num_tasks=0, t_avg=1.0)

    def test_negative_t_avg(self):
        with pytest.raises(ModelError):
            StageModelVariables(name="s", num_tasks=1, t_avg=-1.0)
