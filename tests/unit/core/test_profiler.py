"""Unit tests for the four-sample-run profiler.

The session-scoped ``gatk4_report`` fixture runs the actual procedure; the
tests here assert on its structure, sanity checks, and fitted constants.
"""

import pytest

from repro.core.profiler import Profiler, ProfilingReport
from repro.errors import ProfilingError
from repro.units import GB, KB, MB


class TestProfilerConstruction:
    def test_rejects_bad_nodes(self, gatk4_workload):
        with pytest.raises(ProfilingError):
            Profiler(gatk4_workload, nodes=0)

    def test_rejects_equal_calibration_cores(self, gatk4_workload):
        with pytest.raises(ProfilingError):
            Profiler(gatk4_workload, calibration_cores=(2, 2))


class TestReportStructure:
    def test_one_profile_per_stage(self, gatk4_report, gatk4_workload):
        assert [s.name for s in gatk4_report.stages] == [
            s.name for s in gatk4_workload.stages
        ]

    def test_four_sample_runs_recorded(self, gatk4_report):
        assert len(gatk4_report.sample_runs) == 4
        cores = [run.cores_per_node for run in gatk4_report.sample_runs]
        assert cores == [1, 2, 16, 16]

    def test_run_device_kinds_follow_the_procedure(self, gatk4_report):
        kinds = [
            (run.hdfs_kind, run.local_kind) for run in gatk4_report.sample_runs
        ]
        assert kinds == [
            ("ssd", "ssd"),
            ("ssd", "ssd"),
            ("ssd", "hdd"),
            ("hdd", "ssd"),
        ]

    def test_stage_lookup(self, gatk4_report):
        assert gatk4_report.stage("BR").name == "BR"
        with pytest.raises(ProfilingError):
            gatk4_report.stage("missing")


class TestFittedConstants:
    def test_t_avg_positive_everywhere(self, gatk4_report):
        for stage in gatk4_report.stages:
            assert stage.t_avg > 0

    def test_md_task_count_is_973(self, gatk4_report):
        assert gatk4_report.stage("MD").num_tasks == 973

    def test_br_task_count_includes_reducers_and_scan(self, gatk4_report):
        # 12,667 reducers + 973 scan tasks.
        assert gatk4_report.stage("BR").num_tasks == 12667 + 973

    def test_br_channels_cover_both_reads(self, gatk4_report):
        kinds = {ch.kind for ch in gatk4_report.stage("BR").channels}
        assert kinds == {"shuffle_read", "hdfs_read"}

    def test_shuffle_read_request_size_near_30kb(self, gatk4_report):
        channels = {ch.kind: ch for ch in gatk4_report.stage("BR").channels}
        request = channels["shuffle_read"].request_size
        assert 25 * KB < request < 32 * KB

    def test_table_iv_shuffle_bytes(self, gatk4_report):
        channels = {ch.kind: ch for ch in gatk4_report.stage("BR").channels}
        assert channels["shuffle_read"].total_bytes == pytest.approx(334 * GB)

    def test_br_delta_read_fitted_on_stress_run(self, gatk4_report):
        # BR is forced I/O-bound in sample run 3 (local = HDD), so a
        # nonzero read delta must have been extracted.
        assert gatk4_report.stage("BR").delta_read > 0

    def test_md_t_avg_matches_lambda_structure(self, gatk4_report):
        # MD task: ~128 MB HDFS read at T = 33 MB/s, lambda = 12, plus the
        # shuffle-write time -> mid tens of seconds.
        assert 40 < gatk4_report.stage("MD").t_avg < 70


class TestSanityChecks:
    def test_report_type(self, gatk4_report):
        assert isinstance(gatk4_report, ProfilingReport)

    def test_io_bound_calibration_run_rejected(self):
        # An absurd workload whose single stage is pure I/O with almost no
        # compute: even at P = 1 the stage sits on the I/O floor, which the
        # sanity check must reject.
        from repro.workloads.base import (
            ChannelSpec,
            StageSpec,
            TaskGroupSpec,
            WorkloadSpec,
        )

        io_only = WorkloadSpec(
            name="io-only",
            stages=(
                StageSpec(
                    name="flood",
                    groups=(
                        TaskGroupSpec(
                            name="flood",
                            count=8,
                            read_channels=(
                                ChannelSpec(
                                    kind="shuffle_read",
                                    bytes_per_task=64 * GB,
                                    request_size=128 * MB,
                                    # No software cap: a single core can
                                    # saturate the device.
                                    per_core_throughput=None,
                                ),
                            ),
                            compute_seconds=0.001,
                        ),
                    ),
                ),
            ),
        )
        with pytest.raises(ProfilingError):
            Profiler(io_only, nodes=1).profile()


class TestCustomWorkloadProfile:
    def test_compute_only_stage_profiles_cleanly(self):
        from repro.workloads.base import StageSpec, TaskGroupSpec, WorkloadSpec

        compute_only = WorkloadSpec(
            name="cpu",
            stages=(
                StageSpec(
                    name="spin",
                    groups=(
                        TaskGroupSpec(name="spin", count=64, compute_seconds=2.0),
                    ),
                ),
            ),
        )
        report = Profiler(compute_only, nodes=2).profile()
        stage = report.stage("spin")
        assert stage.t_avg == pytest.approx(2.0, rel=0.15)
        assert stage.channels == ()
        assert stage.delta_read == 0.0
        assert stage.delta_write == 0.0
