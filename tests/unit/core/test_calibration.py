"""Unit tests for the sample-run calibration math."""

import pytest

from repro.core.calibration import (
    CalibrationResult,
    fit_io_delta,
    fit_scale_constants,
    sanity_check_not_io_bound,
)
from repro.errors import ProfilingError
from repro.units import GB, MB


class TestFitScaleConstants:
    def test_exact_recovery(self):
        # Construct data from known constants and solve them back.
        num_tasks, nodes, t_avg, delta = 900, 3, 7.5, 42.0
        point = lambda p: (p, num_tasks / (nodes * p) * t_avg + delta)
        result = fit_scale_constants(num_tasks, nodes, point(1), point(2))
        assert result.t_avg == pytest.approx(t_avg)
        assert result.delta_scale == pytest.approx(delta)

    def test_zero_delta(self):
        result = fit_scale_constants(100, 1, (1, 100.0), (2, 50.0))
        assert result == CalibrationResult(t_avg=pytest.approx(1.0),
                                           delta_scale=pytest.approx(0.0))

    def test_small_negative_delta_clamped(self):
        # 1% below zero from noise -> clamp to 0.
        num_tasks, nodes, t_avg = 100, 1, 1.0
        t1 = num_tasks / 1 * t_avg - 0.5
        t2 = num_tasks / 2 * t_avg - 0.5
        result = fit_scale_constants(num_tasks, nodes, (1, t1), (2, t2))
        assert result.delta_scale == 0.0

    def test_large_negative_delta_rejected(self):
        with pytest.raises(ProfilingError):
            fit_scale_constants(100, 1, (1, 80.0), (2, 20.0))

    def test_negative_t_avg_rejected(self):
        # Runtime grew with more cores -> I/O was the bottleneck.
        with pytest.raises(ProfilingError):
            fit_scale_constants(100, 1, (1, 50.0), (2, 60.0))

    def test_same_core_counts_rejected(self):
        with pytest.raises(ProfilingError):
            fit_scale_constants(100, 1, (2, 50.0), (2, 40.0))

    def test_invalid_counts_rejected(self):
        with pytest.raises(ProfilingError):
            fit_scale_constants(0, 1, (1, 50.0), (2, 30.0))
        with pytest.raises(ProfilingError):
            fit_scale_constants(100, 0, (1, 50.0), (2, 30.0))
        with pytest.raises(ProfilingError):
            fit_scale_constants(100, 1, (0, 50.0), (2, 30.0))


class TestFitIoDelta:
    def test_residual(self):
        # D/(N*BW) = 100 GB / (2 * 50 MB/s) = 1024 s; measured 1100.
        delta = fit_io_delta(1100.0, 100 * GB, 2, 50 * MB)
        assert delta == pytest.approx(1100.0 - 1024.0)

    def test_negative_residual_clamped(self):
        assert fit_io_delta(1000.0, 100 * GB, 2, 50 * MB) == 0.0

    def test_invalid_inputs(self):
        with pytest.raises(ProfilingError):
            fit_io_delta(10.0, 1.0, 0, 1.0)
        with pytest.raises(ProfilingError):
            fit_io_delta(10.0, 1.0, 1, 0.0)
        with pytest.raises(ProfilingError):
            fit_io_delta(10.0, -1.0, 1, 1.0)


class TestSanityCheck:
    def test_passes_above_floor(self):
        sanity_check_not_io_bound(2000.0, 100 * GB, 2, 50 * MB)

    def test_fails_at_floor(self):
        with pytest.raises(ProfilingError):
            sanity_check_not_io_bound(1024.0, 100 * GB, 2, 50 * MB)

    def test_zero_bytes_always_passes(self):
        sanity_check_not_io_bound(0.001, 0.0, 2, 50 * MB)
