"""Unit tests for the effective-bandwidth table."""

import math

import pytest

from repro.core.bandwidth import EffectiveBandwidthTable
from repro.errors import ModelError
from repro.units import KB, MB


@pytest.fixture()
def table():
    return EffectiveBandwidthTable(
        {4 * KB: 2.6 * MB, 30 * KB: 15 * MB, 128 * MB: 142 * MB}, name="t"
    )


class TestConstruction:
    def test_anchors_sorted(self, table):
        sizes = [size for size, _ in table.anchors]
        assert sizes == sorted(sizes)

    def test_accepts_mapping_and_iterable(self):
        from_map = EffectiveBandwidthTable({1.0: 10.0, 2.0: 20.0})
        from_pairs = EffectiveBandwidthTable([(2.0, 20.0), (1.0, 10.0)])
        assert from_map.anchors == from_pairs.anchors

    def test_empty_rejected(self):
        with pytest.raises(ModelError):
            EffectiveBandwidthTable({})

    def test_nonpositive_size_rejected(self):
        with pytest.raises(ModelError):
            EffectiveBandwidthTable({0.0: 10.0})

    def test_nonpositive_bandwidth_rejected(self):
        with pytest.raises(ModelError):
            EffectiveBandwidthTable({1.0: -5.0})

    def test_duplicate_sizes_rejected(self):
        with pytest.raises(ModelError):
            EffectiveBandwidthTable([(1.0, 10.0), (1.0, 20.0)])

    def test_repr_mentions_name(self, table):
        assert "t" in repr(table)


class TestLookup:
    def test_exact_anchor(self, table):
        assert table.bandwidth(30 * KB) == pytest.approx(15 * MB)

    def test_clamped_below(self, table):
        assert table.bandwidth(1 * KB) == pytest.approx(2.6 * MB)

    def test_clamped_above(self, table):
        assert table.bandwidth(1024 * MB) == pytest.approx(142 * MB)

    def test_log_log_interpolation(self, table):
        # Midpoint in log space between 30 KB and 128 MB anchors.
        mid = math.sqrt(30 * KB * 128 * MB)
        expected = math.sqrt(15 * MB * 142 * MB)
        assert table.bandwidth(mid) == pytest.approx(expected, rel=1e-9)

    def test_monotone_between_increasing_anchors(self, table):
        previous = 0.0
        for size in (4 * KB, 8 * KB, 30 * KB, 1 * MB, 32 * MB, 128 * MB):
            current = table.bandwidth(size)
            assert current >= previous
            previous = current

    def test_nonpositive_request_rejected(self, table):
        with pytest.raises(ModelError):
            table.bandwidth(0.0)

    def test_iops_is_bandwidth_over_size(self, table):
        assert table.iops(30 * KB) == pytest.approx(15 * MB / (30 * KB))

    def test_transfer_time(self, table):
        assert table.transfer_time(30 * MB, 30 * KB) == pytest.approx(2.0)

    def test_transfer_time_zero_bytes(self, table):
        assert table.transfer_time(0.0, 30 * KB) == 0.0

    def test_transfer_time_negative_rejected(self, table):
        with pytest.raises(ModelError):
            table.transfer_time(-1.0, 30 * KB)

    def test_peak_and_range_properties(self, table):
        assert table.peak_bandwidth == pytest.approx(142 * MB)
        assert table.min_request_size == pytest.approx(4 * KB)
        assert table.max_request_size == pytest.approx(128 * MB)


class TestDerivedTables:
    def test_gap_versus(self, table):
        fast = table.scaled(32.0)
        assert fast.gap_versus(table, 30 * KB) == pytest.approx(32.0)

    def test_scaled(self, table):
        doubled = table.scaled(2.0)
        assert doubled.bandwidth(30 * KB) == pytest.approx(30 * MB)

    def test_scaled_rejects_nonpositive(self, table):
        with pytest.raises(ModelError):
            table.scaled(0.0)

    def test_capped(self, table):
        capped = table.capped(10 * MB)
        assert capped.bandwidth(128 * MB) == pytest.approx(10 * MB)
        assert capped.bandwidth(4 * KB) == pytest.approx(2.6 * MB)

    def test_capped_rejects_nonpositive(self, table):
        with pytest.raises(ModelError):
            table.capped(-1.0)

    def test_iops_capped_binds_small_requests(self, table):
        limited = table.iops_capped(100.0)
        assert limited.bandwidth(4 * KB) == pytest.approx(100.0 * 4 * KB)
        # Large requests keep the throughput curve.
        assert limited.bandwidth(128 * MB) == pytest.approx(142 * MB)

    def test_iops_capped_rejects_nonpositive(self, table):
        with pytest.raises(ModelError):
            table.iops_capped(0.0)


class TestPaperAnchors:
    """The specific numbers Section III-C quotes."""

    def test_hdd_ssd_gap_30kb_is_32x(self):
        from repro.storage.device import make_hdd, make_ssd

        hdd, ssd = make_hdd(), make_ssd()
        gap = ssd.read_table.gap_versus(hdd.read_table, 30 * KB)
        assert gap == pytest.approx(32.0, rel=0.01)

    def test_hdd_ssd_gap_4kb_is_181x(self):
        from repro.storage.device import make_hdd, make_ssd

        hdd, ssd = make_hdd(), make_ssd()
        gap = ssd.read_table.gap_versus(hdd.read_table, 4 * KB)
        assert gap == pytest.approx(181.0, rel=0.01)

    def test_hdd_ssd_gap_128mb_is_3_7x(self):
        from repro.storage.device import make_hdd, make_ssd

        hdd, ssd = make_hdd(), make_ssd()
        gap = ssd.read_table.gap_versus(hdd.read_table, 128 * MB)
        assert gap == pytest.approx(3.7, rel=0.01)

    def test_hdd_30kb_bandwidth_is_15mbs(self):
        from repro.storage.device import make_hdd

        assert make_hdd().read_bandwidth(30 * KB) == pytest.approx(15 * MB)

    def test_ssd_30kb_bandwidth_is_480mbs(self):
        from repro.storage.device import make_ssd

        assert make_ssd().read_bandwidth(30 * KB) == pytest.approx(480 * MB)
