"""Unit tests for profiling-report JSON serialization."""

import json

import pytest

from repro.core import (
    Predictor,
    load_report,
    report_from_dict,
    report_to_dict,
    save_report,
)
from repro.core.serialization import FORMAT_VERSION
from repro.errors import ModelError
from repro.storage import make_hdd, make_ssd


class TestRoundTrip:
    def test_dict_round_trip_preserves_everything(self, gatk4_report):
        rebuilt = report_from_dict(report_to_dict(gatk4_report))
        assert rebuilt.workload_name == gatk4_report.workload_name
        assert rebuilt.nodes == gatk4_report.nodes
        for original, restored in zip(gatk4_report.stages, rebuilt.stages):
            assert restored.name == original.name
            assert restored.num_tasks == original.num_tasks
            assert restored.t_avg == pytest.approx(original.t_avg)
            assert restored.delta_scale == pytest.approx(original.delta_scale)
            assert restored.delta_read == pytest.approx(original.delta_read)
            assert restored.delta_write == pytest.approx(original.delta_write)
            assert restored.fill_seconds == pytest.approx(original.fill_seconds)
            assert restored.gc_coeff == pytest.approx(original.gc_coeff)
            assert restored.channels == original.channels

    def test_file_round_trip(self, gatk4_report, tmp_path):
        path = tmp_path / "gatk4.json"
        save_report(gatk4_report, path)
        loaded = load_report(path)
        assert loaded.stages == gatk4_report.stages

    def test_loaded_report_predicts_identically(self, gatk4_report, tmp_path):
        path = tmp_path / "gatk4.json"
        save_report(gatk4_report, path)
        devices = {"hdfs": make_ssd(), "local": make_hdd()}
        original = Predictor(gatk4_report).model_for_devices(devices)
        restored = Predictor(load_report(path)).model_for_devices(devices)
        for nodes, cores in ((3, 12), (10, 36)):
            assert restored.runtime(nodes, cores) == pytest.approx(
                original.runtime(nodes, cores)
            )

    def test_json_is_stable_text(self, gatk4_report, tmp_path):
        path = tmp_path / "r.json"
        save_report(gatk4_report, path)
        data = json.loads(path.read_text())
        assert data["format_version"] == FORMAT_VERSION
        assert {s["name"] for s in data["stages"]} == {"MD", "BR", "SF"}


class TestErrors:
    def test_wrong_version_rejected(self, gatk4_report):
        data = report_to_dict(gatk4_report)
        data["format_version"] = 99
        with pytest.raises(ModelError):
            report_from_dict(data)

    def test_missing_field_rejected(self, gatk4_report):
        data = report_to_dict(gatk4_report)
        del data["stages"][0]["t_avg"]
        with pytest.raises(ModelError):
            report_from_dict(data)

    def test_unreadable_file(self, tmp_path):
        with pytest.raises(ModelError):
            load_report(tmp_path / "missing.json")

    def test_corrupt_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ModelError):
            load_report(path)


class TestCliIntegration:
    def test_profile_output_then_predict_report(self, tmp_path, capsys):
        from repro.cli import main

        report_path = tmp_path / "svm.json"
        assert main(
            ["profile", "--workload", "svm", "--nodes", "2",
             "--output", str(report_path)]
        ) == 0
        assert report_path.exists()
        capsys.readouterr()
        assert main(
            ["predict", "--workload", "svm", "--slaves", "4", "--cores", "8",
             "--report", str(report_path)]
        ) == 0
        assert "TOTAL" in capsys.readouterr().out
