"""Unit tests for the predictor facade."""

import pytest

from repro.cluster import HYBRID_CONFIGS, make_paper_cluster
from repro.cluster.node import Node
from repro.cluster.cluster import Cluster
from repro.errors import ModelError
from repro.storage import make_hdd, make_ssd
from repro.units import GB


class TestModelConstruction:
    def test_model_for_devices(self, gatk4_predictor):
        model = gatk4_predictor.model_for_devices(
            {"hdfs": make_ssd(), "local": make_ssd()}
        )
        assert [s.name for s in model.stages] == ["MD", "BR", "SF"]

    def test_missing_role_rejected(self, gatk4_predictor):
        with pytest.raises(ModelError):
            gatk4_predictor.model_for_devices({"hdfs": make_ssd()})

    def test_model_for_cluster(self, gatk4_predictor, ssd_cluster):
        model = gatk4_predictor.model_for_cluster(ssd_cluster)
        assert model.runtime(3, 36) > 0

    def test_heterogeneous_cluster_rejected(self, gatk4_predictor):
        slaves = [
            Node(
                name="a", num_cores=36, ram_bytes=128 * GB,
                hdfs_device=make_ssd("a-h"), local_device=make_ssd("a-l"),
            ),
            Node(
                name="b", num_cores=36, ram_bytes=128 * GB,
                hdfs_device=make_hdd("b-h"), local_device=make_hdd("b-l"),
            ),
        ]
        cluster = Cluster(slaves=slaves)
        with pytest.raises(ModelError):
            gatk4_predictor.model_for_cluster(cluster)


class TestPredictions:
    def test_ssd_faster_than_hdd(self, gatk4_predictor):
        ssd_cluster = make_paper_cluster(10, HYBRID_CONFIGS[0])
        hdd_cluster = make_paper_cluster(10, HYBRID_CONFIGS[3])
        fast = gatk4_predictor.predict_runtime(ssd_cluster, 24)
        slow = gatk4_predictor.predict_runtime(hdd_cluster, 24)
        assert slow > 3 * fast

    def test_more_nodes_never_slower(self, gatk4_predictor):
        small = make_paper_cluster(3, HYBRID_CONFIGS[0])
        large = make_paper_cluster(10, HYBRID_CONFIGS[0])
        assert gatk4_predictor.predict_runtime(
            large, 12
        ) <= gatk4_predictor.predict_runtime(small, 12)

    def test_prediction_object_shape(self, gatk4_predictor, ssd_cluster):
        prediction = gatk4_predictor.predict(ssd_cluster, 12)
        assert prediction.nodes == 3
        assert prediction.cores_per_node == 12
        assert {s.stage_name for s in prediction.stages} == {"MD", "BR", "SF"}

    def test_br_io_bound_on_hdd_local(self, gatk4_predictor):
        hdd_cluster = make_paper_cluster(10, HYBRID_CONFIGS[3])
        prediction = gatk4_predictor.predict(hdd_cluster, 36)
        assert prediction.stage("BR").bottleneck == "read"

    def test_br_scale_bound_on_ssd_local(self, gatk4_predictor):
        ssd_cluster = make_paper_cluster(10, HYBRID_CONFIGS[0])
        prediction = gatk4_predictor.predict(ssd_cluster, 36)
        assert prediction.stage("BR").bottleneck == "scale"
