"""Unit tests for the break-point theory (Section IV-B)."""

import pytest

from repro.core.breakpoints import (
    BreakPointAnalysis,
    ExecutionPhase,
    break_point,
    classify_phase,
    turning_point,
)
from repro.errors import ModelError
from repro.units import MB


class TestBreakPoint:
    def test_paper_example(self):
        # Fig. 6's illustration: T = 60 MB/s, BW = 120 MB/s -> b = 2.
        assert break_point(120 * MB, 60 * MB) == pytest.approx(2.0)

    def test_ssd_shuffle_read(self):
        # Section V-A2: BW = 480, T = 60 -> b = 8.
        assert break_point(480 * MB, 60 * MB) == pytest.approx(8.0)

    def test_hdfs_read_break_points(self):
        # Section V-A1: b = 4.3 (HDD) and 16 (SSD) at T = 33 MB/s.
        assert break_point(142 * MB, 33 * MB) == pytest.approx(4.3, rel=0.02)
        assert break_point(525.4 * MB, 33 * MB) == pytest.approx(16.0, rel=0.01)

    def test_rejects_nonpositive(self):
        with pytest.raises(ModelError):
            break_point(0.0, 60 * MB)
        with pytest.raises(ModelError):
            break_point(120 * MB, 0.0)


class TestTurningPoint:
    def test_br_stage_turning_point(self):
        # Section V-A2: lambda = 20, b = 8 -> B = 160 cores.
        assert turning_point(480 * MB, 60 * MB, 20.0) == pytest.approx(160.0)

    def test_hdd_br_turning_point(self):
        # HDD shuffle read: b = 15/60 -> effectively 1 after lambda = 5 ... B = 5.
        # Paper treats b = 1, lambda = 5, B = 5; with raw numbers B = 1.25.
        assert turning_point(15 * MB, 60 * MB, 20.0) == pytest.approx(5.0)

    def test_lambda_below_one_rejected(self):
        with pytest.raises(ModelError):
            turning_point(120 * MB, 60 * MB, 0.5)


class TestClassifyPhase:
    def test_no_contention(self):
        assert classify_phase(2, 2.0, 8.0) is ExecutionPhase.NO_CONTENTION

    def test_contention_hidden(self):
        assert classify_phase(5, 2.0, 8.0) is ExecutionPhase.CONTENTION_HIDDEN

    def test_io_bound(self):
        assert classify_phase(9, 2.0, 8.0) is ExecutionPhase.IO_BOUND

    def test_boundaries_inclusive(self):
        assert classify_phase(8, 2.0, 8.0) is ExecutionPhase.CONTENTION_HIDDEN

    def test_invalid_cores(self):
        with pytest.raises(ModelError):
            classify_phase(0, 2.0, 8.0)

    def test_invalid_b_ordering(self):
        with pytest.raises(ModelError):
            classify_phase(1, 8.0, 2.0)


class TestBreakPointAnalysis:
    def test_md_stage_never_io_bound_at_36_cores(self):
        # Section V-A1: MD's HDFS read has B > 36 on both devices.
        hdd = BreakPointAnalysis(
            per_core_throughput=33 * MB, bandwidth=142 * MB, lam=12.0
        )
        ssd = BreakPointAnalysis(
            per_core_throughput=33 * MB, bandwidth=525.4 * MB, lam=12.0
        )
        assert hdd.big_b > 36
        assert ssd.big_b > 36
        assert hdd.scales_with_cores(36)
        assert ssd.scales_with_cores(36)

    def test_br_hdd_stops_scaling_past_5_cores(self):
        # Section V-A2: on HDD, BR stops scaling past B = 5.
        analysis = BreakPointAnalysis(
            per_core_throughput=60 * MB, bandwidth=15 * MB, lam=20.0
        )
        assert analysis.big_b == pytest.approx(5.0)
        assert not analysis.scales_with_cores(12)
        assert analysis.phase(12) is ExecutionPhase.IO_BOUND

    def test_br_ssd_scales_through_36_cores(self):
        analysis = BreakPointAnalysis(
            per_core_throughput=60 * MB, bandwidth=480 * MB, lam=20.0
        )
        assert analysis.b == pytest.approx(8.0)
        assert analysis.big_b == pytest.approx(160.0)
        assert analysis.scales_with_cores(36)
