"""Unit tests for the JVM GC overhead model (the paper's future work)."""

import pytest

from repro.core.gc import (
    fit_gc_coefficient,
    gc_scale_term_seconds,
    gc_seconds_per_task,
)
from repro.core.stage_model import StageModel
from repro.core.variables import StageModelVariables
from repro.errors import ProfilingError


class TestGcFormulas:
    def test_per_task_grows_with_cores(self):
        assert gc_seconds_per_task(0.5, 36) == pytest.approx(18.0)

    def test_scale_term_independent_of_p(self):
        # M * gc / N — no P anywhere.
        assert gc_scale_term_seconds(0.5, 973, 10) == pytest.approx(48.65)

    def test_validation(self):
        with pytest.raises(ProfilingError):
            gc_seconds_per_task(-1.0, 4)
        with pytest.raises(ProfilingError):
            gc_seconds_per_task(1.0, 0)
        with pytest.raises(ProfilingError):
            gc_scale_term_seconds(1.0, 0, 1)


class TestFitGcCoefficient:
    def test_residual_attribution(self):
        # measured = baseline + M*gc/N with gc = 2.0.
        gc = fit_gc_coefficient(
            measured_seconds=1000.0 + 973 * 2.0 / 10,
            baseline_prediction_seconds=1000.0,
            num_tasks=973,
            nodes=10,
        )
        assert gc == pytest.approx(2.0)

    def test_small_residual_is_noise(self):
        assert fit_gc_coefficient(1010.0, 1000.0, 973, 10) == 0.0

    def test_negative_residual_zero(self):
        assert fit_gc_coefficient(900.0, 1000.0, 973, 10) == 0.0

    def test_validation(self):
        with pytest.raises(ProfilingError):
            fit_gc_coefficient(1.0, 1.0, 0, 1)
        with pytest.raises(ProfilingError):
            fit_gc_coefficient(-1.0, 1.0, 10, 1)


class TestGcInStageModel:
    def _model(self, gc):
        return StageModel(
            StageModelVariables(
                name="MD", num_tasks=973, t_avg=50.0, gc_coeff=gc
            )
        )

    def test_zero_gc_recovers_paper_model(self):
        clean = self._model(0.0)
        assert clean.t_scale(10, 36) == pytest.approx(973 / 360 * 50.0)

    def test_gc_term_flattens_scaling(self):
        model = self._model(6.0)
        t12 = model.t_scale(10, 12)
        t36 = model.t_scale(10, 36)
        # Without GC the ratio is 3x; GC compresses it.
        assert t12 / t36 < 1.9

    def test_gc_adds_constant_term(self):
        clean = self._model(0.0)
        dirty = self._model(6.0)
        for cores in (6, 12, 24, 36):
            assert dirty.t_scale(10, cores) - clean.t_scale(10, cores) == (
                pytest.approx(973 * 6.0 / 10)
            )

    def test_negative_gc_rejected(self):
        from repro.errors import ModelError

        with pytest.raises(ModelError):
            StageModelVariables(name="s", num_tasks=1, t_avg=1.0, gc_coeff=-1.0)


class TestGcAwareProfiling:
    """End-to-end: fit_gc=True recovers a planted coefficient."""

    @pytest.fixture(scope="class")
    def gc_report(self):
        from repro.core import Profiler
        from repro.workloads.gatk4 import Gatk4Parameters, make_gatk4_workload

        workload = make_gatk4_workload(Gatk4Parameters(md_gc_coeff=6.0))
        return Profiler(workload, nodes=3, fit_gc=True).profile()

    def test_recovers_planted_coefficient(self, gc_report):
        assert gc_report.stage("MD").gc_coeff == pytest.approx(6.0, rel=0.02)

    def test_gc_free_stages_fit_zero(self, gc_report):
        assert gc_report.stage("BR").gc_coeff == pytest.approx(0.0, abs=1e-6)
        assert gc_report.stage("SF").gc_coeff == pytest.approx(0.0, abs=1e-6)

    def test_t_avg_not_contaminated(self, gc_report):
        # The GC-corrected fit should give the same t_avg as a GC-free
        # workload (~53.6 s for MD).
        assert gc_report.stage("MD").t_avg == pytest.approx(53.6, rel=0.05)

    def test_prediction_accuracy_with_gc(self, gc_report):
        from repro.cluster import HYBRID_CONFIGS, make_paper_cluster
        from repro.core import Predictor
        from repro.workloads.gatk4 import Gatk4Parameters, make_gatk4_workload
        from repro.workloads.runner import measure_workload

        workload = make_gatk4_workload(Gatk4Parameters(md_gc_coeff=6.0))
        predictor = Predictor(gc_report)
        cluster = make_paper_cluster(10, HYBRID_CONFIGS[0])
        # GC inflates tasks to ~270 s, so at P=36 a node runs only ~2.7
        # waves and last-wave granularity (which Equation 1 ignores) costs
        # ~10 %; allow 15 %.
        for cores in (12, 36):
            measured = measure_workload(cluster, cores, workload)
            predicted = predictor.predict(cluster, cores)
            error = abs(
                predicted.stage("MD").t_stage - measured.stage("MD").makespan
            ) / measured.stage("MD").makespan
            assert error < 0.15

    def test_default_profiler_absorbs_gc_into_delta(self):
        # Without fit_gc, the M*gc/N term lands in delta_scale (it is
        # constant across the two calibration runs) — documented behavior.
        from repro.core import Profiler
        from repro.workloads.gatk4 import Gatk4Parameters, make_gatk4_workload

        workload = make_gatk4_workload(Gatk4Parameters(md_gc_coeff=6.0))
        report = Profiler(workload, nodes=3, fit_gc=False).profile()
        md = report.stage("MD")
        assert md.gc_coeff == 0.0
        # delta absorbed ~ M * gc / N = 973 * 6 / 3 = 1946 s.
        assert md.delta_scale > 1500
