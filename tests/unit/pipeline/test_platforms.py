"""Unit tests for execution platforms."""

import pytest

from repro.cloud.pricing import CloudConfiguration
from repro.cloud.instance import machine_for_vcpus
from repro.cluster import HYBRID_CONFIGS, make_paper_cluster
from repro.cluster.cluster import HybridDiskConfig
from repro.errors import ConfigurationError
from repro.pipeline.platforms import (
    CloudPlatform,
    ClusterPlatform,
    Platform,
    as_platform,
)


class TestClusterPlatform:
    def test_parametric_builds_any_node_count(self):
        platform = ClusterPlatform("ssd", "hdd")
        cluster = platform.cluster(4)
        assert cluster.num_slaves == 4
        assert cluster.slaves[0].hdfs_device.kind == "ssd"
        assert cluster.slaves[0].local_device.kind == "hdd"
        # Cluster construction is memoized per node count.
        assert platform.cluster(4) is cluster

    def test_from_config_matches_paper_cluster(self):
        # config_id only affects labels, so the platform's cluster must be
        # device-for-device identical to make_paper_cluster's.
        config = HYBRID_CONFIGS[3]
        built = ClusterPlatform.from_config(config).cluster(3)
        reference = make_paper_cluster(3, config)
        for ours, theirs in zip(built.slaves, reference.slaves):
            assert ours.hdfs_device.kind == theirs.hdfs_device.kind
            assert ours.local_device.kind == theirs.local_device.kind
            assert ours.num_cores == theirs.num_cores

    def test_fixed_cluster_pins_the_node_count(self):
        cluster = make_paper_cluster(3, HYBRID_CONFIGS[0])
        platform = ClusterPlatform.of(cluster)
        assert platform.default_nodes() == 3
        assert platform.cluster(3) is cluster
        with pytest.raises(ConfigurationError):
            platform.cluster(5)

    def test_rejects_nonpositive_node_counts(self):
        with pytest.raises(ConfigurationError):
            ClusterPlatform().cluster(0)

    def test_fingerprints_separate_configurations(self):
        ssd = ClusterPlatform.from_config(HYBRID_CONFIGS[0])
        hdd = ClusterPlatform.from_config(HYBRID_CONFIGS[3])
        assert ssd.fingerprint() != hdd.fingerprint()
        again = ClusterPlatform.from_config(HYBRID_CONFIGS[0])
        assert ssd.fingerprint() == again.fingerprint()

    def test_parametric_has_no_default_shape(self):
        platform = ClusterPlatform()
        assert platform.default_nodes() is None
        assert platform.default_cores() is None

    def test_label(self):
        assert ClusterPlatform("ssd", "hdd").label == "cluster[hdfs=ssd,local=hdd]"


class TestCloudPlatform:
    @pytest.fixture()
    def config(self):
        return CloudConfiguration(
            machine=machine_for_vcpus(16),
            num_workers=5,
            hdfs_disk_kind="pd-standard",
            hdfs_disk_gb=500,
            local_disk_kind="pd-ssd",
            local_disk_gb=200,
        )

    def test_defaults_come_from_the_configuration(self, config):
        platform = CloudPlatform(config)
        assert platform.default_nodes() == 5
        assert platform.default_cores() == config.cores_per_node

    def test_cluster_builds_persistent_disks(self, config):
        cluster = CloudPlatform(config).cluster(5)
        assert cluster.num_slaves == 5
        node = cluster.slaves[0]
        assert node.num_cores == config.cores_per_node
        assert node.hdfs_device.kind == "pd-standard"
        assert node.local_device.kind == "pd-ssd"

    def test_model_devices_match_cluster_devices(self, config):
        platform = CloudPlatform(config)
        devices = platform.devices_by_role()
        node = platform.cluster(5).slaves[0]
        for role, device in devices.items():
            node_device = getattr(node, f"{role}_device")
            assert device.kind == node_device.kind
            assert device.capacity_bytes == node_device.capacity_bytes

    def test_from_disks_convenience(self):
        platform = CloudPlatform.from_disks(
            "pd-standard", 500, "pd-ssd", 200, vcpus=8, num_workers=3
        )
        assert platform.default_nodes() == 3
        assert platform.config.machine.vcpus == 8

    def test_fingerprints_separate_disk_choices(self, config):
        import dataclasses

        other = dataclasses.replace(config, local_disk_kind="pd-standard")
        assert CloudPlatform(config).fingerprint() != CloudPlatform(
            other
        ).fingerprint()


class TestAsPlatform:
    def test_passthrough(self):
        platform = ClusterPlatform()
        assert as_platform(platform) is platform

    def test_cluster_coercion(self):
        cluster = make_paper_cluster(2, HYBRID_CONFIGS[0])
        platform = as_platform(cluster)
        assert isinstance(platform, ClusterPlatform)
        assert isinstance(platform, Platform)
        assert platform.default_nodes() == 2

    def test_config_coercions(self):
        assert isinstance(as_platform(HYBRID_CONFIGS[1]), ClusterPlatform)
        config = CloudConfiguration(
            machine=machine_for_vcpus(16),
            num_workers=2,
            hdfs_disk_kind="pd-ssd",
            hdfs_disk_gb=100,
            local_disk_kind="pd-ssd",
            local_disk_gb=100,
        )
        assert isinstance(as_platform(config), CloudPlatform)

    def test_hybrid_config_coercion_keeps_kinds(self):
        platform = as_platform(HybridDiskConfig(0, "hdd", "ssd"))
        assert platform.hdfs_kind == "hdd"
        assert platform.local_kind == "ssd"

    def test_rejects_garbage(self):
        with pytest.raises(ConfigurationError):
            as_platform("not-a-platform")
