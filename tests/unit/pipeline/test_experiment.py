"""Unit tests for the Experiment orchestrator."""

import pytest

from repro.cluster import HYBRID_CONFIGS, make_paper_cluster
from repro.cluster.network import NetworkModel
from repro.core import Predictor, Profiler
from repro.errors import ConfigurationError
from repro.pipeline import (
    ClusterPlatform,
    Experiment,
    ResolvedSource,
    ResultCache,
    SpecSource,
)
from repro.workloads.runner import measure_workload

NODES = 2
CORES = 4


class TestMeasure:
    def test_matches_the_bare_runner(self, tiny_workload):
        experiment = Experiment(tiny_workload, HYBRID_CONFIGS[0])
        cluster = make_paper_cluster(NODES, HYBRID_CONFIGS[0])
        direct = measure_workload(cluster, CORES, tiny_workload)
        assert (
            experiment.measure(NODES, CORES).total_seconds
            == direct.total_seconds
        )

    def test_spec_sources_are_not_profiled(self, tiny_workload):
        source = SpecSource(tiny_workload)
        experiment = Experiment(source, HYBRID_CONFIGS[0])
        experiment.measure(NODES, CORES)
        assert source._resolved is None

    def test_cache_hit_is_bit_identical(self, tiny_workload):
        experiment = Experiment(tiny_workload, HYBRID_CONFIGS[0])
        first = experiment.measure(NODES, CORES)
        second = experiment.measure(NODES, CORES)
        assert second is first  # exact-key lookup returns the stored object
        assert experiment.cache.measurement_stats.hits == 1

    def test_run_index_separates_realizations(self, tiny_workload):
        experiment = Experiment(tiny_workload, HYBRID_CONFIGS[0])
        base = experiment.measure(NODES, CORES, run_index=0)
        other = experiment.measure(NODES, CORES, run_index=1)
        assert base.total_seconds != other.total_seconds
        assert experiment.cache.measurement_stats.hits == 0


class TestPredict:
    def test_matches_the_bare_predictor(self, tiny_workload, tiny_report):
        experiment = Experiment(
            ResolvedSource(tiny_workload, tiny_report), HYBRID_CONFIGS[0]
        )
        cluster = make_paper_cluster(NODES, HYBRID_CONFIGS[0])
        direct = (
            Predictor(tiny_report)
            .model_for_cluster(cluster)
            .predict(NODES, CORES)
        )
        assert experiment.predict(NODES, CORES).t_app == direct.t_app

    def test_prediction_is_cached(self, tiny_workload, tiny_report):
        experiment = Experiment(
            ResolvedSource(tiny_workload, tiny_report), HYBRID_CONFIGS[0]
        )
        assert experiment.predict(NODES, CORES) is experiment.predict(
            NODES, CORES
        )
        assert experiment.cache.prediction_stats.hits == 1


class TestRun:
    @pytest.fixture(scope="class")
    def run_result(self, tiny_report, make_tiny):
        experiment = Experiment(
            ResolvedSource(make_tiny(), tiny_report), HYBRID_CONFIGS[0]
        )
        return experiment, experiment.run(NODES, CORES)

    def test_composes_both_halves(self, run_result):
        experiment, result = run_result
        assert result.measured_seconds == experiment.measure(
            NODES, CORES
        ).total_seconds
        assert result.predicted_seconds == experiment.predict(
            NODES, CORES
        ).t_app
        assert result.nodes == NODES and result.cores_per_node == CORES

    def test_stage_breakdown(self, run_result):
        _, result = run_result
        assert [s.name for s in result.stages] == ["ingest", "reduce"]
        stage = result.stage("reduce")
        assert stage.measured_seconds > 0
        assert stage.bottleneck in ("scale", "read", "write")
        with pytest.raises(KeyError):
            result.stage("nope")

    def test_error_rate(self, run_result):
        _, result = run_result
        assert result.error == abs(
            result.measured_seconds - result.predicted_seconds
        ) / result.measured_seconds

    def test_json_form(self, run_result):
        import json

        _, result = run_result
        payload = json.loads(json.dumps(result.to_dict()))
        assert payload["workload"] == "tiny"
        assert len(payload["stages"]) == 2
        assert payload["stages"][0]["bottleneck"]
        assert payload["device_utilizations"]

    def test_utilizations_are_fractions(self, run_result):
        _, result = run_result
        assert 0.0 < result.core_utilization <= 1.0
        for _, _, busy in result.device_utilizations:
            assert 0.0 <= busy <= 1.0


class TestGrids:
    def test_run_grid_shape_and_order(self, tiny_workload, tiny_report):
        experiment = Experiment(
            ResolvedSource(tiny_workload, tiny_report), HYBRID_CONFIGS[0]
        )
        results = experiment.run_grid(
            nodes=(2, 3), cores_per_node=(4, 8), run_indices=(0, 1)
        )
        assert len(results) == 8
        assert [(r.nodes, r.cores_per_node, r.run_index) for r in results][
            :3
        ] == [(2, 4, 0), (2, 4, 1), (2, 8, 0)]

    def test_grid_reuses_points_across_calls(self, tiny_workload, tiny_report):
        experiment = Experiment(
            ResolvedSource(tiny_workload, tiny_report), HYBRID_CONFIGS[0]
        )
        experiment.run_grid(nodes=(2,), cores_per_node=(4, 8))
        experiment.run_grid(nodes=(2,), cores_per_node=(4, 8))
        assert experiment.cache.measurement_stats.hits == 2
        assert experiment.cache.prediction_stats.hits == 2

    def test_run_repeated_varies_the_realization(
        self, tiny_workload, tiny_report
    ):
        experiment = Experiment(
            ResolvedSource(tiny_workload, tiny_report), HYBRID_CONFIGS[0]
        )
        results = experiment.run_repeated(NODES, CORES, runs=3)
        assert [r.run_index for r in results] == [0, 1, 2]
        assert len({r.measured_seconds for r in results}) == 3
        # The model side is jitter-free: one prediction serves all runs.
        assert len({r.predicted_seconds for r in results}) == 1
        assert experiment.cache.prediction_stats.hits == 2

    def test_run_repeated_rejects_nonpositive_runs(
        self, tiny_workload, tiny_report
    ):
        experiment = Experiment(
            ResolvedSource(tiny_workload, tiny_report), HYBRID_CONFIGS[0]
        )
        with pytest.raises(ConfigurationError):
            experiment.run_repeated(NODES, CORES, runs=0)


class TestShapeDefaults:
    def test_parametric_platform_needs_an_explicit_shape(self, tiny_workload):
        experiment = Experiment(tiny_workload, HYBRID_CONFIGS[0])
        with pytest.raises(ConfigurationError):
            experiment.measure()

    def test_fixed_cluster_supplies_nodes(self, tiny_workload):
        cluster = make_paper_cluster(NODES, HYBRID_CONFIGS[0])
        experiment = Experiment(tiny_workload, cluster)
        measurement = experiment.measure(cores_per_node=CORES)
        assert measurement.stages[0].nodes == NODES

    def test_grid_axis_without_default_raises(self, tiny_workload):
        experiment = Experiment(tiny_workload, HYBRID_CONFIGS[0])
        with pytest.raises(ConfigurationError):
            experiment.run_grid(cores_per_node=(4,))


class TestNetwork:
    def test_network_is_part_of_the_cache_key(self, tiny_workload):
        cache = ResultCache()
        infinite = Experiment(tiny_workload, HYBRID_CONFIGS[0], cache=cache)
        throttled = Experiment(
            tiny_workload,
            HYBRID_CONFIGS[0],
            cache=cache,
            network=NetworkModel.from_gbps(0.5),
        )
        fast = infinite.measure(NODES, CORES)
        slow = throttled.measure(NODES, CORES)
        assert cache.measurement_stats.hits == 0
        # A 0.5 Gb/s fabric must slow the shuffle-heavy tiny workload.
        assert slow.total_seconds > fast.total_seconds

    def test_network_gbps_reporting(self, tiny_workload):
        experiment = Experiment(
            tiny_workload,
            HYBRID_CONFIGS[0],
            network=NetworkModel.from_gbps(10.0),
        )
        assert experiment.network_gbps == pytest.approx(10.0)
        assert Experiment(tiny_workload, HYBRID_CONFIGS[0]).network_gbps is None


class TestDescribe:
    def test_one_liner(self, tiny_workload):
        experiment = Experiment(tiny_workload, HYBRID_CONFIGS[3])
        assert experiment.describe() == "spec:tiny @ cluster[hdfs=hdd,local=hdd]"


class TestSharedCaches:
    def test_equal_sources_share_entries_across_experiments(self, make_tiny):
        cache = ResultCache()
        Experiment(make_tiny(), HYBRID_CONFIGS[0], cache=cache).measure(
            NODES, CORES
        )
        Experiment(make_tiny(), HYBRID_CONFIGS[0], cache=cache).measure(
            NODES, CORES
        )
        assert cache.measurement_stats.hits == 1

    def test_platforms_do_not_collide(self, make_tiny):
        cache = ResultCache()
        Experiment(make_tiny(), HYBRID_CONFIGS[0], cache=cache).measure(
            NODES, CORES
        )
        Experiment(make_tiny(), HYBRID_CONFIGS[3], cache=cache).measure(
            NODES, CORES
        )
        assert cache.measurement_stats.hits == 0


class TestCrashSafety:
    """Killed sweeps resume from the file-backed checkpoint (ISSUE PR 4)."""

    GRID = dict(nodes=(2, 3), cores_per_node=(2,), run_indices=(0, 1))

    def test_killed_grid_resumes_bit_identically_with_fewer_misses(
        self, tmp_path, make_tiny, monkeypatch
    ):
        import repro.pipeline.experiment as experiment_module

        spec = make_tiny()
        path = tmp_path / "sweep.json"

        # Uninterrupted reference sweep on a private in-memory cache.
        reference = Experiment(spec, HYBRID_CONFIGS[0]).run_grid(**self.GRID)

        # "Kill" a file-backed sweep after two fresh cells: the third
        # simulation dies the way SIGKILL mid-grid would.
        calls = {"n": 0}
        real_measure = experiment_module.measure_workload

        def dying_measure(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] > 2:
                raise KeyboardInterrupt
            return real_measure(*args, **kwargs)

        monkeypatch.setattr(
            experiment_module, "measure_workload", dying_measure
        )
        with pytest.raises(KeyboardInterrupt):
            Experiment(
                spec, HYBRID_CONFIGS[0], cache=ResultCache(path)
            ).run_grid(**self.GRID)
        monkeypatch.setattr(experiment_module, "measure_workload", real_measure)

        # The checkpoint holds exactly the two completed cells.
        assert path.exists()
        checkpoint = ResultCache(path)
        assert len(checkpoint._measurements) == 2

        # A fresh process resumes: same grid, bit-identical records,
        # strictly fewer fresh simulations than the full sweep.
        resumed_cache = ResultCache(path)
        resumed = Experiment(
            spec, HYBRID_CONFIGS[0], cache=resumed_cache
        ).run_grid(**self.GRID)
        assert [r.to_dict() for r in resumed] == [
            r.to_dict() for r in reference
        ]
        assert resumed_cache.measurement_stats.hits == 2
        assert resumed_cache.measurement_stats.misses == 2  # < the 4 cells

    def test_completed_grid_reruns_entirely_from_cache(
        self, tmp_path, make_tiny
    ):
        spec = make_tiny()
        path = tmp_path / "done.json"
        first = Experiment(
            spec, HYBRID_CONFIGS[0], cache=ResultCache(path)
        ).run_grid(**self.GRID)
        rerun_cache = ResultCache(path)
        rerun = Experiment(
            spec, HYBRID_CONFIGS[0], cache=rerun_cache
        ).run_grid(**self.GRID)
        assert [r.to_dict() for r in rerun] == [r.to_dict() for r in first]
        assert rerun_cache.measurement_stats.misses == 0
        assert rerun_cache.prediction_stats.misses == 0

    def test_run_repeated_checkpoints_like_the_grid(self, tmp_path, make_tiny):
        spec = make_tiny()
        path = tmp_path / "repeated.json"
        experiment = Experiment(spec, HYBRID_CONFIGS[0], cache=ResultCache(path))
        experiment.run_repeated(NODES, CORES, runs=2)
        assert len(ResultCache(path)._measurements) == 2
