"""Shared fixtures for the experiment-pipeline unit tests.

The workload here is deliberately tiny (two stages, a handful of tasks)
so profiling — four simulated sample runs — stays in the millisecond
range and every test can afford a fresh resolve.
"""

from __future__ import annotations

import pytest

from repro.units import KB, MB
from repro.workloads.base import ChannelSpec, StageSpec, TaskGroupSpec, WorkloadSpec


def make_tiny_workload(name: str = "tiny") -> WorkloadSpec:
    """A two-stage workload exercising HDFS and shuffle channels."""
    return WorkloadSpec(
        name=name,
        stages=(
            StageSpec(
                name="ingest",
                groups=(
                    TaskGroupSpec(
                        name="g",
                        count=12,
                        read_channels=(
                            ChannelSpec(
                                kind="hdfs_read",
                                bytes_per_task=64 * MB,
                                request_size=1 * MB,
                            ),
                        ),
                        compute_seconds=1.0,
                        write_channels=(
                            ChannelSpec(
                                kind="shuffle_write",
                                bytes_per_task=32 * MB,
                                request_size=1 * MB,
                            ),
                        ),
                    ),
                ),
            ),
            StageSpec(
                name="reduce",
                groups=(
                    TaskGroupSpec(
                        name="g",
                        count=8,
                        read_channels=(
                            ChannelSpec(
                                kind="shuffle_read",
                                bytes_per_task=48 * MB,
                                request_size=64 * KB,
                            ),
                        ),
                        compute_seconds=0.5,
                        write_channels=(
                            ChannelSpec(
                                kind="hdfs_write",
                                bytes_per_task=16 * MB,
                                request_size=1 * MB,
                            ),
                        ),
                    ),
                ),
            ),
        ),
    )


@pytest.fixture()
def tiny_workload():
    return make_tiny_workload()


@pytest.fixture(scope="session")
def make_tiny():
    """The factory itself, for tests that need fresh equal copies."""
    return make_tiny_workload


@pytest.fixture(scope="module")
def tiny_report():
    """A profiling report for the tiny workload (shared per module)."""
    from repro.core import Profiler

    return Profiler(make_tiny_workload(), nodes=3).profile()
