"""Unit tests for content-addressed fingerprints."""

from repro.cluster.cluster import HybridDiskConfig
from repro.pipeline.fingerprint import canonicalize, fingerprint
from repro.storage.device import make_hdd, make_ssd


class TestStability:
    def test_equal_specs_share_a_fingerprint(self, make_tiny):
        # Two separately constructed but identical specs must address the
        # same cache entries — this is the whole point of the scheme.
        assert fingerprint(make_tiny()) == fingerprint(make_tiny())

    def test_different_specs_differ(self, make_tiny):
        assert fingerprint(make_tiny("a")) != fingerprint(make_tiny("b"))

    def test_dict_key_order_is_canonical(self):
        assert fingerprint({"a": 1, "b": 2}) == fingerprint({"b": 2, "a": 1})

    def test_floats_are_exact(self):
        # repr round-trips floats exactly; 0.1 + 0.2 is not 0.3.
        assert fingerprint(0.1 + 0.2) != fingerprint(0.3)

    def test_integral_floats_match_ints(self):
        # Regression: 1.0 == 1 describes the same configuration, but the
        # old float branch canonicalized 1.0 to "1.0", splitting the cache
        # between specs built with int and float literals.
        assert fingerprint(1.0) == fingerprint(1)
        assert fingerprint({"cores": 8.0}) == fingerprint({"cores": 8})
        assert fingerprint({1.0: "a"}) == fingerprint({1: "a"})
        # Non-integral floats and mere near-misses still stay distinct.
        assert fingerprint(1.5) != fingerprint(1)
        assert fingerprint(True) != fingerprint(1.0)

    def test_mixed_type_sets_are_ordered(self):
        # Regression: sorting canonical forms directly raises TypeError on
        # mixed-type members; ordering by serialized form is total.
        assert fingerprint({"a", 1, 2.5}) == fingerprint({2.5, "a", 1})


class TestDevices:
    def test_name_and_wear_are_ignored(self):
        # Simulation outcomes depend only on the bandwidth curves, so the
        # label and mutable fill state must not change the fingerprint.
        a = make_ssd(name="slave0-hdfs-ssd")
        b = make_ssd(name="w9-local")
        b.allocate(1024)
        assert fingerprint(a) == fingerprint(b)

    def test_kind_changes_the_fingerprint(self):
        assert fingerprint(make_ssd()) != fingerprint(make_hdd())

    def test_canonical_form_carries_the_curves(self):
        form = canonicalize(make_ssd())
        assert form["__device__"] == "ssd"
        assert "read" in form and "write" in form


class TestFallbacks:
    def test_dataclass_walk(self):
        config = HybridDiskConfig(0, hdfs_kind="ssd", local_kind="hdd")
        form = canonicalize(config)
        assert form["__type__"] == "HybridDiskConfig"
        assert form["hdfs_kind"] == "ssd"

    def test_sets_are_ordered(self):
        assert fingerprint({3, 1, 2}) == fingerprint({2, 3, 1})

    def test_exotic_values_get_a_textual_form(self):
        assert canonicalize(complex(1, 2)) == "complex:(1+2j)"
