"""Unit tests for workload sources and their coercions."""

import pytest

from repro.core.serialization import report_to_dict, save_report
from repro.errors import WorkloadError
from repro.pipeline.cache import ResultCache
from repro.pipeline.sources import (
    ReportSource,
    ResolvedSource,
    RddSource,
    SpecSource,
    WorkloadSource,
    as_source,
    spec_from_report,
)
from repro.spark.context import DoppioContext
from repro.spark.stageinfo import StageRuntimeProfile


class TestSpecSource:
    def test_spec_only_does_not_profile(self, tiny_workload):
        source = SpecSource(tiny_workload)
        spec, fp = source.spec_only()
        assert spec is tiny_workload
        assert len(fp) == 16
        # Resolution (four simulated sample runs) must not have happened.
        assert source._resolved is None

    def test_resolve_memoizes(self, tiny_workload):
        source = SpecSource(tiny_workload)
        assert source.resolve() is source.resolve()

    def test_resolve_reuses_cached_reports(self, tiny_workload):
        cache = ResultCache()
        first = SpecSource(tiny_workload).resolve(cache)
        second = SpecSource(tiny_workload).resolve(cache)
        assert cache.report_stats.hits == 1
        assert report_to_dict(first.report) == report_to_dict(second.report)

    def test_profiling_options_change_the_cache_key(self, tiny_workload):
        cache = ResultCache()
        SpecSource(tiny_workload, profile_nodes=2).resolve(cache)
        SpecSource(tiny_workload, profile_nodes=3).resolve(cache)
        assert cache.report_stats.hits == 0

    def test_describe(self, tiny_workload):
        assert SpecSource(tiny_workload).describe() == "spec:tiny"


class TestReportSource:
    def test_report_is_the_model_side(self, tiny_report):
        resolved = ReportSource(tiny_report).resolve()
        assert resolved.report is tiny_report
        assert [s.name for s in resolved.spec.stages] == [
            s.name for s in tiny_report.stages
        ]

    def test_loads_from_a_json_path(self, tiny_report, tmp_path):
        path = tmp_path / "report.json"
        save_report(tiny_report, path)
        source = ReportSource(path)
        assert report_to_dict(source.report) == report_to_dict(tiny_report)

    def test_spec_from_report_replays_channels(self, tiny_workload, tiny_report):
        spec = spec_from_report(tiny_report)
        kinds = ("hdfs_read", "hdfs_write", "shuffle_read", "shuffle_write")
        for original, replayed in zip(tiny_workload.stages, spec.stages):
            assert replayed.name == original.name
            assert replayed.num_tasks == original.num_tasks
            for kind in kinds:
                assert replayed.total_bytes(kind) == pytest.approx(
                    original.total_bytes(kind)
                )

    def test_describe(self, tiny_report):
        assert ReportSource(tiny_report).describe() == "report:tiny"


class TestResolvedSource:
    def test_resolution_is_free_and_cacheless(self, tiny_workload, tiny_report):
        cache = ResultCache()
        source = ResolvedSource(tiny_workload, tiny_report)
        resolved = source.resolve(cache)
        assert resolved.spec is tiny_workload
        assert resolved.report is tiny_report
        assert cache.report_stats.total == 0  # no cache traffic at all

    def test_fingerprints_match_spec_source(self, tiny_workload, tiny_report):
        pre = ResolvedSource(tiny_workload, tiny_report)
        _, spec_fp = SpecSource(tiny_workload).spec_only()
        assert pre.spec_only()[1] == spec_fp

    def test_describe(self, tiny_workload, tiny_report):
        source = ResolvedSource(tiny_workload, tiny_report)
        assert source.describe() == "resolved:tiny"


class TestRddSource:
    def test_from_profiles(self):
        profiles = [
            StageRuntimeProfile(
                name="s", num_tasks=4, hdfs_read_bytes=4096.0,
                compute_seconds_per_task=0.1,
            )
        ]
        source = RddSource("mini", profiles)
        assert source.describe() == "rdd:mini"
        assert source.spec.stages[0].num_tasks == 4

    def test_from_context(self):
        sc = DoppioContext()
        sc.parallelize(range(100), 4).map(lambda x: x * 2).collect()
        for profile in sc.stage_profiles:
            profile.compute_seconds_per_task = 0.1
        source = RddSource("doubling", sc)
        assert len(source.spec.stages) == len(sc.stage_profiles)

    def test_rejects_non_profiles(self):
        with pytest.raises(WorkloadError):
            RddSource("bad", [1, 2, 3])
        with pytest.raises(WorkloadError):
            RddSource("bad", object())


class TestAsSource:
    def test_passthrough(self, tiny_workload, tiny_report):
        for source in (
            SpecSource(tiny_workload),
            ReportSource(tiny_report),
            ResolvedSource(tiny_workload, tiny_report),
        ):
            assert as_source(source) is source

    def test_spec_coercion(self, tiny_workload):
        source = as_source(tiny_workload)
        assert isinstance(source, SpecSource)
        assert isinstance(source, WorkloadSource)

    def test_report_coercion(self, tiny_report):
        assert isinstance(as_source(tiny_report), ReportSource)

    def test_path_coercion(self, tiny_report, tmp_path):
        path = tmp_path / "report.json"
        save_report(tiny_report, path)
        assert isinstance(as_source(str(path)), ReportSource)

    def test_profile_list_coercion(self):
        profiles = [
            StageRuntimeProfile(
                name="s", num_tasks=2, hdfs_read_bytes=1024.0,
                compute_seconds_per_task=0.1,
            )
        ]
        source = as_source(profiles, name="listed")
        assert isinstance(source, RddSource)
        assert source.spec.name == "listed"

    def test_rejects_garbage(self):
        with pytest.raises(WorkloadError):
            as_source(42)
