"""Unit tests for the content-addressed result cache."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cluster import HYBRID_CONFIGS, make_paper_cluster
from repro.core import Predictor, Profiler
from repro.core.serialization import report_to_dict
from repro.pipeline.cache import (
    CACHE_FORMAT_VERSION,
    CacheStats,
    ResultCache,
    mix_key,
    prediction_key,
    run_key,
)
from repro.pipeline.records import (
    measurement_to_dict,
    mix_to_dict,
    prediction_to_dict,
)
from repro.schedule.mix import MixJob, measure_mix
from repro.workloads.runner import measure_workload


class TestKeys:
    def test_run_key_separates_every_axis(self):
        base = run_key("s", "p", 3, 12)
        assert run_key("s", "p", 3, 12, run_index=1) != base
        assert run_key("s", "p", 4, 12) != base
        assert run_key("s", "p", 3, 24) != base
        assert run_key("s", "p", 3, 12, network_fp="1e9") != base
        assert run_key("s2", "p", 3, 12) != base

    def test_prediction_key_has_no_run_index(self):
        # Model evaluations are jitter-free; all runs share one entry.
        assert prediction_key("r", "p", 3, 12) == prediction_key("r", "p", 3, 12)
        assert prediction_key("r", "p", 3, 12) != prediction_key("r", "p", 3, 24)

    def test_mix_key_separates_every_axis(self):
        base = mix_key("m", "p", 3, 12)
        assert mix_key("m", "p", 3, 12, run_index=1) != base
        assert mix_key("m", "p", 4, 12) != base
        assert mix_key("m", "p", 3, 24) != base
        assert mix_key("m", "p", 3, 12, network_fp="1e9") != base
        assert mix_key("m", "p", 3, 12, fault_fp="f") != base
        assert mix_key("m2", "p", 3, 12) != base

    def test_mix_keys_disjoint_from_run_keys(self):
        # Same fingerprints and shape: the mix/ prefix keeps the two
        # namespaces apart even inside one flat section.
        assert mix_key("x", "p", 3, 12).startswith("mix/")
        assert mix_key("x", "p", 3, 12) != run_key("x", "p", 3, 12)


class TestStats:
    def test_counters(self):
        cache = ResultCache()
        assert cache.get_measurement("missing") is None
        assert cache.measurement_stats.misses == 1
        cache.put_measurement("k", object())
        assert cache.get_measurement("k") is not None
        assert cache.measurement_stats.hits == 1
        assert cache.measurement_stats.hit_rate == 0.5

    def test_mix_counters_are_separate(self):
        cache = ResultCache()
        assert cache.get_mix("missing") is None
        cache.put_mix("x", object())
        assert cache.get_mix("x") is not None
        assert cache.mix_stats.hits == 1
        assert cache.mix_stats.misses == 1
        assert cache.measurement_stats.total == 0

    def test_empty_stats(self):
        stats = CacheStats()
        assert stats.total == 0
        assert stats.hit_rate == 0.0

    def test_summary_line(self):
        cache = ResultCache()
        assert cache.stats_summary() == "cache unused"
        cache.get_prediction("nope")
        assert "model 0/1" in cache.stats_summary()

    def test_len_and_clear(self):
        cache = ResultCache()
        cache.put_measurement("a", object())
        cache.put_prediction("b", object())
        assert len(cache) == 2
        cache.clear()
        assert len(cache) == 0


class TestStructuredStats:
    """The stats() dict surfaced by pipeline --json and the service."""

    def test_per_kind_counters_and_entries(self):
        cache = ResultCache()
        cache.get_measurement("miss")
        cache.put_measurement("k", object())
        cache.get_measurement("k")
        stats = cache.stats()
        assert stats["measurements"]["hits"] == 1
        assert stats["measurements"]["misses"] == 1
        assert stats["measurements"]["entries"] == 1
        assert stats["measurements"]["hit_rate"] == 0.5
        assert stats["predictions"]["hits"] == 0

    def test_aggregate_totals_span_kinds(self):
        cache = ResultCache()
        cache.get_measurement("a")  # sim miss
        cache.put_prediction("p", object())
        cache.get_prediction("p")  # model hit
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["hit_rate"] == 0.5
        assert stats["entries"] == 1

    def test_clear_counts_evictions(self):
        cache = ResultCache()
        cache.put_measurement("a", object())
        cache.put_prediction("b", object())
        cache.clear()
        stats = cache.stats()
        assert stats["measurements"]["evictions"] == 1
        assert stats["predictions"]["evictions"] == 1
        assert stats["evictions"] == 2

    def test_summary_is_embedded(self):
        cache = ResultCache()
        stats = cache.stats()
        assert stats["summary"] == "cache unused"
        cache.put_prediction("p", object())
        cache.get_prediction("p")
        assert "100% hits" in cache.stats()["summary"]

    def test_num_predictions(self):
        cache = ResultCache()
        assert cache.num_predictions == 0
        cache.put_prediction("p", object())
        assert cache.num_predictions == 1

    def test_stats_is_json_ready(self):
        cache = ResultCache()
        cache.get_mix("nope")
        json.dumps(cache.stats())  # must not raise


@pytest.fixture(scope="module")
def populated(tmp_path_factory, make_tiny):
    """A cache holding one of each product kind, saved to disk."""
    workload = make_tiny()
    cluster = make_paper_cluster(2, HYBRID_CONFIGS[0])
    measurement = measure_workload(cluster, 4, workload)
    report = Profiler(workload, nodes=2).profile()
    prediction = Predictor(report).model_for_cluster(cluster).predict(2, 4)
    mix = measure_mix(
        make_paper_cluster(2, HYBRID_CONFIGS[0]),
        4,
        [MixJob(spec=workload), MixJob(spec=make_tiny(), arrival=5.0)],
    )

    cache = ResultCache()
    cache.put_measurement("m", measurement)
    cache.put_prediction("p", prediction)
    cache.put_report("r", report)
    cache.put_mix("x", mix)
    path = tmp_path_factory.mktemp("cache") / "cache.json"
    cache.save(path)
    return cache, path


class TestPersistence:
    def test_round_trip_is_bit_identical(self, populated):
        cache, path = populated
        loaded = ResultCache(path)
        assert measurement_to_dict(
            loaded.get_measurement("m")
        ) == measurement_to_dict(cache.get_measurement("m"))
        assert prediction_to_dict(loaded.get_prediction("p")) == prediction_to_dict(
            cache.get_prediction("p")
        )
        assert report_to_dict(loaded.get_report("r")) == report_to_dict(
            cache.get_report("r")
        )
        assert mix_to_dict(loaded.get_mix("x")) == mix_to_dict(cache.get_mix("x"))

    def test_loaded_mix_is_the_measurement(self, populated):
        cache, path = populated
        loaded = ResultCache(path)
        mix = loaded.get_mix("x")
        assert mix == cache.get_mix("x")  # lossless: frozen dataclass equality
        assert [t.name for t in mix.jobs] == ["tiny", "tiny#2"]

    def test_loaded_measurement_totals_match(self, populated):
        cache, path = populated
        loaded = ResultCache(path)
        assert (
            loaded.get_measurement("m").total_seconds
            == cache.get_measurement("m").total_seconds
        )

    def test_stale_format_starts_empty(self, populated, tmp_path):
        _, path = populated
        data = json.loads(path.read_text())
        data["format_version"] = CACHE_FORMAT_VERSION + 1
        stale = tmp_path / "stale.json"
        stale.write_text(json.dumps(data))
        assert len(ResultCache(stale)) == 0

    def test_save_requires_a_path(self):
        with pytest.raises(ValueError):
            ResultCache().save()

    def test_missing_file_is_fine(self, tmp_path):
        cache = ResultCache(tmp_path / "does-not-exist.json")
        assert len(cache) == 0
        cache.put_measurement("k", object())

    def test_save_leaves_no_temp_file(self, populated, tmp_path):
        cache, _ = populated
        target = tmp_path / "clean.json"
        cache.save(target)
        assert [p.name for p in tmp_path.iterdir()] == ["clean.json"]


class TestShards:
    """Worker-shard export/merge and counter-free peeks."""

    def test_contains_does_not_touch_counters(self):
        cache = ResultCache()
        cache.put_measurement("m", object())
        assert cache.contains_measurement("m")
        assert not cache.contains_measurement("missing")
        assert not cache.contains_prediction("m")
        assert cache.measurement_stats.total == 0
        assert cache.prediction_stats.total == 0

    def test_export_merge_round_trip(self):
        worker, parent = ResultCache(), ResultCache()
        marker = object()
        worker.put_measurement("m", marker)
        worker.put_prediction("p", object())
        worker.put_mix("x", object())
        shard = worker.export_shard()
        assert ResultCache.shard_keys(shard) == {
            "measurements:m",
            "predictions:p",
            "mixes:x",
        }
        assert parent.merge_shard(shard) == 3
        assert parent.get_measurement("m") is marker
        assert parent.contains_mix("x")

    def test_export_excludes_already_shipped_keys(self):
        worker = ResultCache()
        worker.put_measurement("a", object())
        first = worker.export_shard()
        worker.put_measurement("b", object())
        second = worker.export_shard(exclude=ResultCache.shard_keys(first))
        assert ResultCache.shard_keys(second) == {"measurements:b"}

    def test_merge_first_writer_wins(self):
        parent = ResultCache()
        resident = object()
        parent.put_prediction("p", resident)
        assert parent.merge_shard({"predictions": {"p": object()}}) == 0
        assert parent.get_prediction("p") is resident


class TestConcurrentWriters:
    """Two processes sharing one cache file must never corrupt it.

    Saves are atomic (tmp + ``os.replace``) and keys are
    content-addressed, so however two writers' saves interleave the file
    is always one writer's complete, valid snapshot; entries unique to
    the overwritten snapshot are merely recomputed next time.  This test
    simulates the worst interleaving in-process: both writers load the
    same state, both add entries, both save.
    """

    def test_interleaved_saves_leave_a_valid_store(self, populated, tmp_path):
        cache, _ = populated
        shared = tmp_path / "shared.json"
        cache.save(shared)

        writer_a = ResultCache(shared)
        writer_b = ResultCache(shared)  # loads the same snapshot
        writer_a.put_measurement("only-a", cache.get_measurement("m"))
        writer_b.put_prediction("only-b", cache.get_prediction("p"))
        writer_a.save()
        writer_b.save()  # last writer wins; clobbers "only-a"

        final = ResultCache(shared)
        # Never torn: the file parses and the shared entries survive.
        assert json.loads(shared.read_text())["format_version"] == (
            CACHE_FORMAT_VERSION
        )
        assert final.get_measurement("m") is not None
        assert final.get_prediction("p") is not None
        assert final.get_prediction("only-b") is not None
        # The loser's unique entry is gone — recomputable, not corrupting.
        assert final.get_measurement("only-a") is None

    def test_interleaved_saves_commute_for_shared_entries(self, populated, tmp_path):
        # Content-addressed keys mean both writers serialize identical
        # bytes for every shared entry, so writer order is invisible.
        cache, _ = populated
        ab, ba = tmp_path / "ab.json", tmp_path / "ba.json"
        cache.save(ab)
        cache.save(ba)
        first, second = ResultCache(ab), ResultCache(ba)
        first.save()
        second.save()
        second.save(ab)  # reversed finishing order onto the other path
        first.save(ba)
        assert ab.read_text() == ba.read_text()


class TestShardRecovery:
    """Damage between incremental shard checkpoints degrades to recompute.

    Parallel grids checkpoint once per merged worker shard (see
    ``Experiment._run_grid_parallel``), so these pin the recovery
    contract at shard granularity: whatever happened to the last
    checkpoint, the next run loads what it can, warns about the rest,
    and recomputes only the missing cells.
    """

    def _shards(self, populated):
        cache, _ = populated
        first, second = ResultCache(), ResultCache()
        first.put_measurement("cell-0", cache.get_measurement("m"))
        first.put_prediction("cell-0", cache.get_prediction("p"))
        second.put_measurement("cell-1", cache.get_measurement("m"))
        return first.export_shard(), second.export_shard()

    def test_truncated_shard_checkpoint_recovers_by_recompute(
        self, populated, tmp_path
    ):
        # Run 1 merges shard A, checkpoints, and is killed; something
        # (disk full, manual edit) truncates the checkpoint.  Run 2 must
        # warn, start empty, and be able to re-merge every shard.
        shard_a, shard_b = self._shards(populated)
        checkpoint = tmp_path / "checkpoint.json"
        parent = ResultCache(checkpoint)
        parent.merge_shard(shard_a)
        parent.save()
        text = checkpoint.read_text()
        checkpoint.write_text(text[: len(text) // 2])

        with pytest.warns(UserWarning, match="unreadable"):
            resumed = ResultCache(checkpoint)
        assert len(resumed) == 0  # nothing trusted from the torn file
        assert resumed.merge_shard(shard_a) == 2
        assert resumed.merge_shard(shard_b) == 1
        resumed.save()
        reloaded = ResultCache(checkpoint)
        assert reloaded.contains_measurement("cell-0")
        assert reloaded.contains_measurement("cell-1")

    def test_wrong_schema_shard_entries_skipped_on_reload(
        self, populated, tmp_path
    ):
        # A checkpoint whose shard-A entries are valid JSON but not our
        # schema (e.g. written by a different tool) loses only those
        # entries; shard B's survive the reload untouched.
        shard_a, shard_b = self._shards(populated)
        checkpoint = tmp_path / "mixed.json"
        parent = ResultCache(checkpoint)
        parent.merge_shard(shard_a)
        parent.merge_shard(shard_b)
        parent.save()

        data = json.loads(checkpoint.read_text())
        data["measurements"]["cell-0"] = {"schema": "not-ours", "value": 7}
        data["predictions"]["cell-0"] = ["also", "wrong"]
        checkpoint.write_text(json.dumps(data))

        with pytest.warns(UserWarning) as caught:
            resumed = ResultCache(checkpoint)
        messages = [str(w.message) for w in caught]
        assert any("skipping corrupt measurements" in m for m in messages)
        assert any("skipping corrupt predictions" in m for m in messages)
        assert not resumed.contains_measurement("cell-0")
        assert resumed.contains_measurement("cell-1")  # shard B intact
        # The skipped cells look cold and get recomputed via merge.
        assert resumed.merge_shard(shard_a) == 2

    def test_interleaved_two_writer_merge_commutes(self, populated, tmp_path):
        # Two supervised runs sharing a checkpoint merge their shards in
        # opposite orders; first-writer-wins on content-addressed keys
        # makes the surviving file identical either way.
        shard_a, shard_b = self._shards(populated)
        ab, ba = tmp_path / "ab.json", tmp_path / "ba.json"

        writer = ResultCache(ab)
        writer.merge_shard(shard_a)
        writer.save()  # checkpoint between merges
        writer.merge_shard(shard_b)
        writer.save()

        other = ResultCache(ba)
        other.merge_shard(shard_b)
        other.save()
        assert other.merge_shard(shard_b) == 0  # replayed shard is a no-op
        other.merge_shard(shard_a)
        other.save()

        # Key insertion order tracks merge order, so compare the parsed
        # stores: same entries, same serialized values, either way round.
        assert json.loads(ab.read_text()) == json.loads(ba.read_text())
        final = ResultCache(ab)
        assert final.contains_measurement("cell-0")
        assert final.contains_prediction("cell-0")
        assert final.contains_measurement("cell-1")

    def test_concurrent_readers_never_observe_a_torn_snapshot(
        self, populated, tmp_path
    ):
        # The multi-reader contract the query service leans on: while
        # one process keeps merging shards and checkpointing, any other
        # process may load the file at any instant and must see a
        # complete, well-formed snapshot — never a half-written one.
        # Readers run with -W error::UserWarning so the "unreadable" /
        # "corrupt" degradation paths count as failures here.
        shard_a, shard_b = self._shards(populated)
        checkpoint = tmp_path / "shared.json"
        writer = ResultCache(checkpoint)
        writer.merge_shard(shard_a)
        writer.save()

        src = Path(__file__).resolve().parents[3] / "src"
        reader_script = (
            "import sys, time\n"
            "from repro.pipeline.cache import ResultCache\n"
            "path = sys.argv[1]\n"
            "deadline = time.monotonic() + 30.0\n"
            "while time.monotonic() < deadline:\n"
            "    cache = ResultCache(path)  # warns -> -W error -> exit 1\n"
            "    assert len(cache) >= 2  # at least shard A, fully formed\n"
            "    if cache.contains_measurement('cell-1'):\n"
            "        sys.exit(0)  # observed the merged shard B snapshot\n"
            "sys.exit(1)\n"
        )
        readers = [
            subprocess.Popen(
                [sys.executable, "-W", "error::UserWarning", "-c",
                 reader_script, str(checkpoint)],
                env={"PYTHONPATH": str(src)},
            )
            for _ in range(2)
        ]
        try:
            # Keep rewriting the checkpoint while the readers load it;
            # merge shard B partway through so they have a terminal state
            # to wait for.
            for round_index in range(60):
                if round_index == 20:
                    writer.merge_shard(shard_b)
                writer.save()
                if all(r.poll() is not None for r in readers):
                    break
            exit_codes = [r.wait(timeout=60) for r in readers]
        finally:
            for r in readers:
                if r.poll() is None:
                    r.kill()
        assert exit_codes == [0, 0]


class TestCorruption:
    """A damaged cache file degrades to recomputation, never to a crash."""

    def test_truncated_file_warns_and_starts_empty(self, populated, tmp_path):
        # The regression this guards: a non-atomic writer killed mid-save
        # used to leave half a JSON file that crashed the next sweep.
        _, path = populated
        text = path.read_text()
        broken = tmp_path / "truncated.json"
        broken.write_text(text[: len(text) // 2])
        with pytest.warns(UserWarning, match="unreadable"):
            cache = ResultCache(broken)
        assert len(cache) == 0

    def test_non_object_file_warns_and_starts_empty(self, tmp_path):
        broken = tmp_path / "list.json"
        broken.write_text("[1, 2, 3]")
        with pytest.warns(UserWarning, match="not a JSON object"):
            assert len(ResultCache(broken)) == 0

    def test_corrupt_entry_is_skipped_but_the_rest_load(self, populated, tmp_path):
        _, path = populated
        data = json.loads(path.read_text())
        data["measurements"]["m"] = {"stages": "not-a-list"}
        damaged = tmp_path / "damaged.json"
        damaged.write_text(json.dumps(data))
        with pytest.warns(UserWarning, match="skipping corrupt measurements"):
            cache = ResultCache(damaged)
        assert cache.get_measurement("m") is None
        assert cache.get_prediction("p") is not None
        assert cache.get_report("r") is not None

    def test_malformed_section_is_skipped(self, populated, tmp_path):
        _, path = populated
        data = json.loads(path.read_text())
        data["predictions"] = 42
        damaged = tmp_path / "section.json"
        damaged.write_text(json.dumps(data))
        with pytest.warns(UserWarning, match="'predictions' is malformed"):
            cache = ResultCache(damaged)
        assert cache.get_prediction("p") is None
        assert cache.get_measurement("m") is not None

    def test_failed_replace_leaves_the_previous_file_intact(
        self, populated, tmp_path, monkeypatch
    ):
        import repro.pipeline.cache as cache_module

        cache, _ = populated
        target = tmp_path / "atomic.json"
        cache.save(target)
        before = target.read_text()

        def exploding_replace(src, dst):
            raise OSError("simulated crash mid-save")

        monkeypatch.setattr(cache_module.os, "replace", exploding_replace)
        with pytest.raises(OSError):
            cache.save(target)
        assert target.read_text() == before
