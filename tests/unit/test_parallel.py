"""Unit tests for the execution backends (:mod:`repro.parallel`)."""

import pytest

from repro.errors import ConfigurationError
from repro.parallel import (
    AUTO_WORKERS,
    ProcessPoolBackend,
    SerialBackend,
    auto_worker_count,
    available_cpus,
    resolve_backend,
)


def _double(x):
    return 2 * x


_INIT_CALLS = []


def _record_init(tag):
    _INIT_CALLS.append(tag)


def _touch_init(path):
    # Picklable initializer for pool workers: append one line per call.
    with open(path, "a", encoding="utf-8") as handle:
        handle.write("init\n")


def _init_count(path):
    if not path.exists():
        return 0
    return len(path.read_text(encoding="utf-8").splitlines())


class TestResolveBackend:
    def test_none_and_one_resolve_serial(self):
        assert isinstance(resolve_backend(None), SerialBackend)
        assert isinstance(resolve_backend(1), SerialBackend)

    def test_explicit_count_resolves_process_pool(self):
        backend = resolve_backend(3)
        assert isinstance(backend, ProcessPoolBackend)
        assert backend.workers == 3
        backend.shutdown()

    def test_auto_sizes_to_available_cpus(self):
        backend = resolve_backend(AUTO_WORKERS)
        cpus = available_cpus()
        if cpus == 1:
            assert isinstance(backend, SerialBackend)
        else:
            assert isinstance(backend, ProcessPoolBackend)
            assert backend.workers == cpus
        backend.shutdown()

    def test_negative_and_non_int_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_backend(-1)
        with pytest.raises(ConfigurationError):
            resolve_backend("four")
        with pytest.raises(ConfigurationError):
            resolve_backend(True)

    def test_auto_worker_count_is_the_single_sizing_source(self, monkeypatch):
        # Regression guard for the auto-sizing seam: resolve_backend's
        # workers=0 path and the service's pool sizing must both read
        # auto_worker_count(), so faking the affinity changes both.
        import repro.parallel.backends as backends

        monkeypatch.setattr(backends, "available_cpus", lambda: 3)
        assert auto_worker_count() == 3
        backend = resolve_backend(AUTO_WORKERS)
        assert isinstance(backend, ProcessPoolBackend)
        assert backend.workers == auto_worker_count()
        backend.shutdown()

        monkeypatch.setattr(backends, "available_cpus", lambda: 1)
        assert auto_worker_count() == 1
        assert isinstance(resolve_backend(AUTO_WORKERS), SerialBackend)


class TestSerialBackend:
    def test_map_preserves_order(self):
        assert SerialBackend().map(_double, [3, 1, 2]) == [6, 2, 4]

    def test_initializer_runs_once_before_first_item(self):
        _INIT_CALLS.clear()
        backend = SerialBackend(_record_init, ("tag",))
        assert backend.map(_double, []) == []
        assert _INIT_CALLS == []  # nothing mapped: no init
        backend.map(_double, [1])
        backend.map(_double, [2])
        assert _INIT_CALLS == ["tag"]

    def test_context_manager(self):
        with SerialBackend() as backend:
            assert backend.map(_double, [5]) == [10]

    def test_shutdown_then_reuse_reruns_initializer(self):
        # Parity with ProcessPoolBackend: after shutdown, a reused
        # backend behaves like a fresh pool and re-runs its initializer.
        _INIT_CALLS.clear()
        backend = SerialBackend(_record_init, ("again",))
        backend.map(_double, [1])
        backend.shutdown()
        backend.map(_double, [2])
        assert _INIT_CALLS == ["again", "again"]


class TestProcessPoolBackend:
    def test_map_preserves_input_order(self):
        with ProcessPoolBackend(2) as backend:
            assert backend.map(_double, list(range(20))) == [
                2 * i for i in range(20)
            ]

    def test_empty_map_never_spawns(self):
        backend = ProcessPoolBackend(2)
        assert backend.map(_double, []) == []
        assert backend._executor is None  # lazily constructed
        backend.shutdown()

    def test_zero_workers_rejected(self):
        with pytest.raises(ConfigurationError):
            ProcessPoolBackend(0)

    def test_shutdown_is_idempotent(self):
        backend = ProcessPoolBackend(2)
        backend.map(_double, [1])
        backend.shutdown()
        backend.shutdown()


class TestInitializerParity:
    """Both backends defer the initializer past empty maps (satellite 2)."""

    def test_serial_empty_then_nonempty_sequence(self, tmp_path):
        marker = tmp_path / "serial.log"
        backend = SerialBackend(_touch_init, (str(marker),))
        backend.map(_double, [])
        assert _init_count(marker) == 0
        backend.map(_double, [1])
        backend.map(_double, [2])
        assert _init_count(marker) == 1

    def test_pool_empty_then_nonempty_sequence(self, tmp_path):
        marker = tmp_path / "pool.log"
        with ProcessPoolBackend(2, _touch_init, (str(marker),)) as backend:
            backend.map(_double, [])
            assert _init_count(marker) == 0  # pool never spawned
            assert backend.map(_double, [1, 2]) == [2, 4]
        # Spawned once: at most one init per worker, at least one total.
        assert 1 <= _init_count(marker) <= 2


def test_available_cpus_is_positive():
    assert available_cpus() >= 1
