"""QueryServer: routes, error mapping, HTTP round trips on port 0."""

import asyncio
import json

import pytest

from repro.cli import WORKLOADS
from repro.pipeline import ResultCache, SpecSource
from repro.service import QueryEngine, QueryServer
from repro.service.http import MAX_BODY_BYTES
from repro.service.loadgen import _http_get, _http_post, _split_url

NAME = "lr-small"
SPEC = WORKLOADS[NAME]()


@pytest.fixture(scope="module")
def profiled_shard():
    cache = ResultCache()
    SpecSource(SPEC, profile_nodes=3).resolve(cache)
    return cache.export_shard()


def server_cache(profiled_shard) -> ResultCache:
    cache = ResultCache()
    cache.merge_shard(profiled_shard)
    return cache


async def raw_request(host: str, port: int, blob: bytes) -> tuple[int, dict]:
    """Send raw bytes, return (status, parsed JSON body)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(blob)
        await writer.drain()
        raw = await reader.read()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, BrokenPipeError):
            pass
    head, _, body = raw.partition(b"\r\n\r\n")
    status = int(head.split(b"\r\n", 1)[0].split()[1])
    return status, json.loads(body.decode() or "null")


def post_blob(path: str, body: bytes) -> bytes:
    return (
        f"POST {path} HTTP/1.1\r\nHost: t\r\n"
        f"Content-Length: {len(body)}\r\nConnection: close\r\n\r\n"
    ).encode() + body


class TestRoutes:
    def test_healthz_stats_and_query_round_trip(self, profiled_shard):
        async def scenario():
            engine = QueryEngine({NAME: SPEC}, cache=server_cache(profiled_shard))
            server = QueryServer(engine, port=0)  # port 0: kernel picks one
            await server.start()
            try:
                host, port = server.address
                assert port != 0
                health = await _http_get(host, port, "/healthz")
                assert health == {"status": "ok"}
                answer = await _http_post(
                    host,
                    port,
                    "/query",
                    {
                        "kind": "predict",
                        "workload": NAME,
                        "vcpus": 16,
                        "hdfs_kind": "pd-ssd",
                        "hdfs_gb": 512,
                        "local_kind": "pd-ssd",
                        "local_gb": 1024,
                    },
                )
                assert answer["kind"] == "predict"
                assert answer["runtime_seconds"] > 0
                stats = await _http_get(host, port, "/stats")
                assert stats["queries"] == 1
            finally:
                await server.close()

        asyncio.run(scenario())

    def test_error_statuses(self, profiled_shard):
        async def scenario():
            engine = QueryEngine({NAME: SPEC}, cache=server_cache(profiled_shard))
            server = QueryServer(engine, port=0)
            await server.start()
            host, port = server.address
            try:
                # Unknown route -> 404.
                status, body = await raw_request(
                    host,
                    port,
                    b"GET /nope HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
                )
                assert status == 404 and body["error"] == "NotFound"
                # GET on /query -> 405.
                status, body = await raw_request(
                    host,
                    port,
                    b"GET /query HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
                )
                assert status == 405
                # Non-JSON body -> 400.
                status, body = await raw_request(
                    host, port, post_blob("/query", b"{not json")
                )
                assert status == 400 and "JSON" in body["message"]
                # Bad query (unknown kind) -> 400 QueryError.
                status, body = await raw_request(
                    host, port, post_blob("/query", b'{"kind": "explain"}')
                )
                assert status == 400 and body["error"] == "QueryError"
                # Oversized body -> 413 before reading it.
                huge = (
                    f"POST /query HTTP/1.1\r\nHost: t\r\n"
                    f"Content-Length: {MAX_BODY_BYTES + 1}\r\n"
                    f"Connection: close\r\n\r\n"
                ).encode()
                status, body = await raw_request(host, port, huge)
                assert status == 413
                # Empty request line -> 400.
                status, body = await raw_request(host, port, b"\r\n")
                assert status == 400
            finally:
                await server.close()

        asyncio.run(scenario())


class TestSplitUrl:
    def test_accepts_with_and_without_scheme(self):
        assert _split_url("http://127.0.0.1:8642") == ("127.0.0.1", 8642)
        assert _split_url("127.0.0.1:9000") == ("127.0.0.1", 9000)
        assert _split_url("http://localhost") == ("localhost", 80)

    def test_rejects_garbage(self):
        from repro.errors import ServiceError

        with pytest.raises(ServiceError, match="cannot parse"):
            _split_url("http://")
