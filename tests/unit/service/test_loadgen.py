"""Load generator: mix construction, stats, drive, naive baseline."""

import asyncio

import pytest

from repro.errors import ServiceError
from repro.service.loadgen import (
    _drive,
    build_queries,
    naive_baseline,
    percentile,
    summarize,
)


class TestBuildQueries:
    def test_deterministic_and_sized(self):
        a = build_queries("svm", distinct=6, duplicates=3)
        b = build_queries("svm", distinct=6, duplicates=3)
        assert a == b
        assert len(a) == 18

    def test_duplicates_are_separated_by_the_distinct_set(self):
        mix = build_queries("svm", distinct=4, duplicates=2)
        # Round-robin layout: the second copy of query 0 arrives after
        # the whole distinct set, not adjacent to the first.
        assert mix[0] == mix[4]
        assert mix[0] != mix[1]

    def test_each_unique_appears_exactly_duplicates_times(self):
        mix = build_queries("svm", distinct=5, duplicates=4)
        keys = [tuple(sorted(q.items())) for q in mix]
        assert all(keys.count(key) == 4 for key in set(keys))

    def test_optimize_queries_woven_into_the_stream(self):
        mix = build_queries(
            "svm",
            distinct=8,
            duplicates=2,
            optimize_distinct=2,
            optimize_duplicates=3,
        )
        optimizes = [q for q in mix if q["kind"] == "optimize"]
        predicts = [q for q in mix if q["kind"] == "predict"]
        assert len(optimizes) == 6
        assert len(predicts) == 16
        # Interleaved, not appended: an optimize appears before the last
        # predict.
        first_opt = next(i for i, q in enumerate(mix) if q["kind"] == "optimize")
        assert first_opt < len(mix) - 1
        grids = {tuple(q["vcpu_grid"]) for q in optimizes}
        assert len(grids) == 2


class TestStats:
    def test_percentile_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 4.0
        assert percentile(values, 50) == 3.0  # round(0.5 * 3) = 2
        assert percentile([], 50) == 0.0

    def test_summarize_fields(self):
        summary = summarize([0.001, 0.002, 0.003], wall_seconds=0.5)
        assert summary["queries"] == 3
        assert summary["qps"] == pytest.approx(6.0)
        assert summary["p99_ms"] == pytest.approx(3.0)
        assert summary["max_ms"] == pytest.approx(3.0)

    def test_summarize_zero_wall_is_safe(self):
        assert summarize([], 0.0)["qps"] == 0.0


class TestDrive:
    def test_results_preserve_query_order(self):
        async def scenario():
            seen = []

            async def call(query):
                await asyncio.sleep(0)
                seen.append(query["i"])
                return query["i"] * 10

            queries = [{"i": i} for i in range(20)]
            summary = await _drive(queries, concurrency=4, call=call)
            assert summary["results"] == [i * 10 for i in range(20)]
            assert summary["queries"] == 20
            assert sorted(seen) == list(range(20))

        asyncio.run(scenario())

    def test_concurrency_is_bounded(self):
        async def scenario():
            active = 0
            peak = 0

            async def call(query):
                nonlocal active, peak
                active += 1
                peak = max(peak, active)
                await asyncio.sleep(0.001)
                active -= 1
                return None

            await _drive([{} for _ in range(30)], concurrency=3, call=call)
            assert peak <= 3

        asyncio.run(scenario())


class TestNaiveBaseline:
    def test_rejects_kinds_it_cannot_answer(self):
        with pytest.raises(ServiceError, match="simulate"):
            naive_baseline(
                object(),
                [{"kind": "simulate", "workload": "svm", "slaves": 4, "cores": 8}],
            )
