"""Query schema: validation, canonical form, fingerprints."""

import pytest

from repro.errors import QueryError
from repro.service.query import (
    DEFAULT_OPTIMIZE_VCPU_GRID,
    parse_query,
)


def predict_payload(**overrides):
    payload = {
        "kind": "predict",
        "workload": "svm",
        "vcpus": 16,
        "hdfs_kind": "pd-ssd",
        "hdfs_gb": 512,
        "local_kind": "pd-standard",
        "local_gb": 1024,
    }
    payload.update(overrides)
    return payload


class TestValidation:
    def test_non_dict_payload_rejected(self):
        with pytest.raises(QueryError, match="JSON object"):
            parse_query(["predict"])

    def test_missing_kind_rejected(self):
        with pytest.raises(QueryError, match="kind"):
            parse_query({"workload": "svm"})

    def test_unknown_kind_rejected(self):
        with pytest.raises(QueryError, match="unknown kind"):
            parse_query({"kind": "explain", "workload": "svm"})

    def test_missing_required_field_rejected(self):
        payload = predict_payload()
        del payload["vcpus"]
        with pytest.raises(QueryError, match="vcpus"):
            parse_query(payload)

    def test_unknown_field_rejected(self):
        with pytest.raises(QueryError, match="unknown field"):
            parse_query(predict_payload(wibble=1))

    def test_unknown_workload_rejected_when_catalogue_given(self):
        with pytest.raises(QueryError, match="unknown workload"):
            parse_query(predict_payload(), known_workloads={"gatk4": object()})

    def test_unknown_disk_kind_lists_the_catalogue(self):
        with pytest.raises(QueryError, match="pd-ssd"):
            parse_query(predict_payload(hdfs_kind="floppy"))

    def test_non_positive_size_rejected(self):
        with pytest.raises(QueryError, match="positive"):
            parse_query(predict_payload(hdfs_gb=0))

    def test_bool_is_not_an_integer(self):
        with pytest.raises(QueryError, match="integer"):
            parse_query(predict_payload(vcpus=True))

    def test_simulate_disk_defaults(self):
        query = parse_query(
            {"kind": "simulate", "workload": "svm", "slaves": 4, "cores": 8}
        )
        assert (query.hdfs, query.local) == ("ssd", "ssd")

    def test_optimize_grid_default_matches_cli(self):
        query = parse_query({"kind": "optimize", "workload": "svm"})
        assert query.vcpu_grid == DEFAULT_OPTIMIZE_VCPU_GRID
        assert query.prune is False
        assert query.num_workers == 10

    def test_optimize_empty_grid_rejected(self):
        with pytest.raises(QueryError, match="vcpu_grid"):
            parse_query(
                {"kind": "optimize", "workload": "svm", "vcpu_grid": []}
            )

    def test_optimize_prune_must_be_bool(self):
        with pytest.raises(QueryError, match="prune"):
            parse_query(
                {"kind": "optimize", "workload": "svm", "prune": "yes"}
            )


class TestCanonicalIdentity:
    def test_parsed_queries_are_canonical_equal(self):
        # int vs float sizes and field order don't matter.
        a = parse_query(predict_payload(hdfs_gb=512))
        b = parse_query(dict(reversed(list(predict_payload(hdfs_gb=512.0).items()))))
        assert a == b
        assert hash(a) == hash(b)
        assert a.fingerprint == b.fingerprint

    def test_defaults_are_filled_into_identity(self):
        explicit = parse_query(predict_payload(num_workers=10))
        defaulted = parse_query(predict_payload())
        assert explicit == defaulted

    def test_kinds_never_collide(self):
        predict = parse_query(predict_payload())
        simulate = parse_query(
            {"kind": "simulate", "workload": "svm", "slaves": 4, "cores": 8}
        )
        assert predict != simulate
        assert predict.fingerprint != simulate.fingerprint

    def test_different_configs_differ(self):
        assert parse_query(predict_payload()) != parse_query(
            predict_payload(vcpus=32)
        )
