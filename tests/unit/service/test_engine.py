"""QueryEngine: three-tier reads, single-flight, admission, identity.

The acceptance contracts from the service PR:

- N identical concurrent queries trigger exactly one evaluation;
- service answers are bit-identical to the equivalent library calls
  (``CostOptimizer.evaluate`` / ``Experiment.measure`` /
  ``CostOptimizer.grid_search``);
- the persistent tier is the pipeline's own cache, under the pipeline's
  own keys, in both directions;
- past the simulation admission cap, queries are rejected with a
  structured :class:`AdmissionError`, not queued without bound.
"""

import asyncio

import pytest

from repro.cli import WORKLOADS
from repro.cloud.optimizer import CostOptimizer
from repro.core.predictor import Predictor
from repro.errors import AdmissionError, ConfigurationError, QueryError, ServiceError
from repro.pipeline import ClusterPlatform, Experiment, ResultCache, SpecSource
from repro.service import QueryEngine

NAME = "lr-small"
SPEC = WORKLOADS[NAME]()


@pytest.fixture(scope="module")
def profiled_shard():
    """One profiling run, exported for seeding per-test caches."""
    cache = ResultCache()
    SpecSource(SPEC, profile_nodes=3).resolve(cache)
    return cache.export_shard()


def fresh_cache(profiled_shard) -> ResultCache:
    cache = ResultCache()
    cache.merge_shard(profiled_shard)
    return cache


def predict_payload(**overrides):
    payload = {
        "kind": "predict",
        "workload": NAME,
        "vcpus": 16,
        "hdfs_kind": "pd-ssd",
        "hdfs_gb": 512.0,
        "local_kind": "pd-ssd",
        "local_gb": 1024.0,
    }
    payload.update(overrides)
    return payload


def reference_optimizer(cache, num_workers=10):
    resolved = SpecSource(SPEC, profile_nodes=3).resolve(cache)
    min_hdfs, min_local = CostOptimizer.capacity_requirements(
        SPEC, num_workers=num_workers
    )
    return CostOptimizer(
        Predictor(resolved.report),
        num_workers=num_workers,
        min_hdfs_gb=min_hdfs,
        min_local_gb=min_local,
    )


class TestConstruction:
    def test_needs_workloads(self):
        with pytest.raises(ConfigurationError, match="at least one workload"):
            QueryEngine({})

    def test_bounds_validated(self):
        with pytest.raises(ConfigurationError, match="lru_size"):
            QueryEngine({NAME: SPEC}, lru_size=0)
        with pytest.raises(ConfigurationError, match="sim_queue_cap"):
            QueryEngine({NAME: SPEC}, sim_queue_cap=0)


class TestSingleFlight:
    def test_identical_concurrent_queries_evaluate_once(self, profiled_shard):
        async def scenario():
            engine = QueryEngine({NAME: SPEC}, cache=fresh_cache(profiled_shard))
            async with engine:
                payload = predict_payload()
                answers = await asyncio.gather(
                    *(engine.submit(payload) for _ in range(16))
                )
                stats = engine.stats()
                # Exactly one candidate crossed the kernel for 16 queries.
                assert stats["batches"]["entries"] == 1
                assert stats["coalesced"] == 15
                assert all(answer == answers[0] for answer in answers)
            return answers[0]

        asyncio.run(scenario())

    def test_lru_serves_repeats_after_completion(self, profiled_shard):
        async def scenario():
            engine = QueryEngine({NAME: SPEC}, cache=fresh_cache(profiled_shard))
            async with engine:
                first = await engine.submit(predict_payload())
                second = await engine.submit(predict_payload())
                stats = engine.stats()
                assert stats["lru"]["hits"] == 1
                assert stats["batches"]["entries"] == 1  # no re-evaluation
                assert first == second

        asyncio.run(scenario())

    def test_lru_eviction_is_counted(self, profiled_shard):
        async def scenario():
            engine = QueryEngine(
                {NAME: SPEC}, cache=fresh_cache(profiled_shard), lru_size=2
            )
            async with engine:
                for vcpus in (4, 8, 16):
                    await engine.submit(predict_payload(vcpus=vcpus))
                stats = engine.stats()
                assert stats["lru"]["size"] == 2
                assert stats["lru"]["evictions"] == 1

        asyncio.run(scenario())


class TestPredictIdentity:
    def test_bit_identical_to_scalar_evaluate(self, profiled_shard):
        async def scenario():
            cache = fresh_cache(profiled_shard)
            engine = QueryEngine({NAME: SPEC}, cache=cache)
            async with engine:
                payloads = [predict_payload(vcpus=v) for v in (4, 8, 16, 32)]
                answers = await asyncio.gather(
                    *(engine.submit(p) for p in payloads)
                )
            optimizer = reference_optimizer(cache)
            for payload, answer in zip(payloads, answers):
                config = optimizer.make_config(
                    payload["vcpus"],
                    payload["hdfs_kind"],
                    payload["hdfs_gb"],
                    payload["local_kind"],
                    payload["local_gb"],
                )
                reference = optimizer.evaluate(config)
                assert answer["runtime_seconds"] == reference.runtime_seconds
                assert answer["cost_dollars"] == reference.cost_dollars
                assert answer["config"]["label"] == config.label()

        asyncio.run(scenario())

    def test_infeasible_configuration_is_a_query_error(self, profiled_shard):
        min_hdfs, _ = CostOptimizer.capacity_requirements(SPEC, num_workers=10)
        assert min_hdfs > 0

        async def scenario():
            engine = QueryEngine({NAME: SPEC}, cache=fresh_cache(profiled_shard))
            async with engine:
                with pytest.raises(QueryError, match="infeasible"):
                    await engine.submit(
                        predict_payload(hdfs_gb=min_hdfs / 2)
                    )

        asyncio.run(scenario())

    def test_tier2_prediction_hit_skips_the_kernel(self, profiled_shard):
        cache = fresh_cache(profiled_shard)
        # Populate the persistent tier the way `repro optimize --cache`
        # does: a cached CostOptimizer scoring the candidate.
        resolved = SpecSource(SPEC, profile_nodes=3).resolve(cache)
        optimizer = CostOptimizer(Predictor(resolved.report), cache=cache)
        payload = predict_payload()
        config = optimizer.make_config(
            payload["vcpus"],
            payload["hdfs_kind"],
            payload["hdfs_gb"],
            payload["local_kind"],
            payload["local_gb"],
        )
        expected_runtime = optimizer.predict_runtime(config)
        assert cache.num_predictions == 1

        async def scenario():
            engine = QueryEngine({NAME: SPEC}, cache=cache)
            async with engine:
                answer = await engine.submit(payload)
                stats = engine.stats()
                assert stats["tier2_hits"] == 1
                assert stats["batches"]["entries"] == 0  # kernel untouched
                assert answer["runtime_seconds"] == expected_runtime

        asyncio.run(scenario())


class TestSimulate:
    def test_bit_identical_to_experiment_measure(self, profiled_shard):
        async def scenario():
            cache = fresh_cache(profiled_shard)
            engine = QueryEngine({NAME: SPEC}, cache=cache)
            async with engine:
                answer = await engine.submit(
                    {
                        "kind": "simulate",
                        "workload": NAME,
                        "slaves": 4,
                        "cores": 8,
                    }
                )
            reference = Experiment(SPEC, ClusterPlatform()).measure(4, 8)
            assert answer["total_seconds"] == reference.total_seconds
            assert [s["makespan_seconds"] for s in answer["stages"]] == [
                stage.makespan for stage in reference.stages
            ]

        asyncio.run(scenario())

    def test_measurement_cached_by_experiment_is_served_without_compute(
        self, profiled_shard
    ):
        cache = fresh_cache(profiled_shard)
        # A pipeline run populates the cache first...
        Experiment(SPEC, ClusterPlatform(), cache=cache).measure(4, 8)

        async def scenario():
            engine = QueryEngine({NAME: SPEC}, cache=cache)
            async with engine:
                answer = await engine.submit(
                    {
                        "kind": "simulate",
                        "workload": NAME,
                        "slaves": 4,
                        "cores": 8,
                    }
                )
                stats = engine.stats()
                # ...so the service never touched the compute tier.
                assert stats["sim"]["completed"] == 0
                assert stats["tier2_hits"] == 1
                assert answer["total_seconds"] > 0

        asyncio.run(scenario())

    def test_service_measurements_are_visible_to_experiments(
        self, profiled_shard
    ):
        async def scenario():
            cache = fresh_cache(profiled_shard)
            engine = QueryEngine({NAME: SPEC}, cache=cache)
            async with engine:
                await engine.submit(
                    {
                        "kind": "simulate",
                        "workload": NAME,
                        "slaves": 4,
                        "cores": 8,
                    }
                )
            # The pipeline now sees the service's measurement: a warm hit.
            experiment = Experiment(SPEC, ClusterPlatform(), cache=cache)
            experiment.measure(4, 8)
            assert cache.measurement_stats.hits >= 1

        asyncio.run(scenario())

    def test_admission_cap_rejects_with_structure(self, profiled_shard):
        async def scenario():
            engine = QueryEngine(
                {NAME: SPEC}, cache=fresh_cache(profiled_shard), sim_queue_cap=1
            )
            async with engine:
                payloads = [
                    {
                        "kind": "simulate",
                        "workload": NAME,
                        "slaves": slaves,
                        "cores": 8,
                    }
                    for slaves in (3, 4)
                ]
                outcomes = await asyncio.gather(
                    *(engine.submit(p) for p in payloads),
                    return_exceptions=True,
                )
                rejected = [o for o in outcomes if isinstance(o, AdmissionError)]
                served = [o for o in outcomes if isinstance(o, dict)]
                assert len(rejected) == 1 and len(served) == 1
                assert rejected[0].queue_cap == 1
                assert rejected[0].queue_depth >= 1
                assert engine.stats()["sim"]["rejected"] == 1

        asyncio.run(scenario())


class TestOptimize:
    def test_bit_identical_to_grid_search(self, profiled_shard):
        async def scenario():
            cache = fresh_cache(profiled_shard)
            engine = QueryEngine({NAME: SPEC}, cache=cache)
            async with engine:
                answer = await engine.submit(
                    {
                        "kind": "optimize",
                        "workload": NAME,
                        "vcpu_grid": [8, 16],
                        "prune": True,
                    }
                )
            reference = reference_optimizer(cache).grid_search(
                vcpu_grid=(8, 16), prune=True
            )
            assert answer["best"]["cost_dollars"] == reference.best.cost_dollars
            assert (
                answer["best"]["runtime_seconds"]
                == reference.best.runtime_seconds
            )
            assert answer["num_evaluated"] == reference.num_evaluated
            assert answer["num_pruned"] == reference.num_pruned

        asyncio.run(scenario())


class TestLifecycleAndErrors:
    def test_unknown_workload_is_a_query_error(self, profiled_shard):
        async def scenario():
            engine = QueryEngine({NAME: SPEC}, cache=fresh_cache(profiled_shard))
            async with engine:
                with pytest.raises(QueryError, match="unknown workload"):
                    await engine.submit(predict_payload(workload="nope"))

        asyncio.run(scenario())

    def test_closed_engine_refuses_queries(self, profiled_shard):
        async def scenario():
            engine = QueryEngine({NAME: SPEC}, cache=fresh_cache(profiled_shard))
            async with engine:
                pass
            with pytest.raises(ServiceError, match="closed"):
                await engine.submit(predict_payload())

        asyncio.run(scenario())

    def test_warm_rejects_unknown_names(self, profiled_shard):
        async def scenario():
            engine = QueryEngine({NAME: SPEC}, cache=fresh_cache(profiled_shard))
            async with engine:
                with pytest.raises(QueryError, match="unknown workload"):
                    await engine.warm(["nope"])

        asyncio.run(scenario())

    def test_error_does_not_poison_the_single_flight_table(
        self, profiled_shard
    ):
        async def scenario():
            engine = QueryEngine({NAME: SPEC}, cache=fresh_cache(profiled_shard))
            async with engine:
                bad = predict_payload(workload="nope")
                with pytest.raises(QueryError):
                    await engine.submit(bad)
                # A later, valid query still works; inflight is empty.
                answer = await engine.submit(predict_payload())
                assert answer["kind"] == "predict"
                assert engine.stats()["inflight"] == 0

        asyncio.run(scenario())
