"""MicroBatcher: size bound, time bound, counters."""

import asyncio

import pytest

from repro.errors import ConfigurationError
from repro.service.batcher import MicroBatcher


def run(coro):
    return asyncio.run(coro)


class TestBounds:
    def test_bad_batch_size_rejected(self):
        with pytest.raises(ConfigurationError, match="max_batch"):
            MicroBatcher(lambda entries: None, max_batch=0)

    def test_negative_delay_rejected(self):
        with pytest.raises(ConfigurationError, match="max_delay"):
            MicroBatcher(lambda entries: None, max_delay=-1.0)


class TestFlushing:
    def test_size_bound_flushes_synchronously(self):
        async def scenario():
            flushes = []
            batcher = MicroBatcher(flushes.append, max_batch=3, max_delay=60.0)
            batcher.add("a")
            batcher.add("b")
            assert flushes == []
            batcher.add("c")  # size bound trips: no waiting on the timer
            assert flushes == [["a", "b", "c"]]
            assert len(batcher) == 0

        run(scenario())

    def test_time_bound_flushes_a_lone_entry(self):
        async def scenario():
            flushes = []
            batcher = MicroBatcher(flushes.append, max_batch=64, max_delay=0.01)
            batcher.add("lonely")
            assert flushes == []
            await asyncio.sleep(0.05)
            assert flushes == [["lonely"]]

        run(scenario())

    def test_flush_preserves_arrival_order(self):
        async def scenario():
            flushes = []
            batcher = MicroBatcher(flushes.append, max_batch=2)
            for entry in range(6):
                batcher.add(entry)
            assert flushes == [[0, 1], [2, 3], [4, 5]]

        run(scenario())

    def test_close_flushes_the_remainder(self):
        async def scenario():
            flushes = []
            batcher = MicroBatcher(flushes.append, max_batch=10, max_delay=60.0)
            batcher.add("x")
            batcher.close()
            assert flushes == [["x"]]
            batcher.close()  # idempotent on empty
            assert flushes == [["x"]]

        run(scenario())

    def test_stats_track_widths(self):
        async def scenario():
            batcher = MicroBatcher(lambda entries: None, max_batch=2)
            for entry in range(5):
                batcher.add(entry)
            stats = batcher.stats()
            assert stats["flushed"] == 2
            assert stats["entries"] == 4
            assert stats["max_size"] == 2
            assert stats["pending"] == 1

        run(scenario())
