"""Unit tests for the network model."""

import pytest

from repro.cluster.network import NetworkModel, TEN_GBPS
from repro.errors import ConfigurationError
from repro.units import GB, MB


class TestNetworkModel:
    def test_default_is_10gbps(self):
        assert NetworkModel().link_bandwidth == pytest.approx(TEN_GBPS)

    def test_invalid_bandwidth(self):
        with pytest.raises(ConfigurationError):
            NetworkModel(link_bandwidth=0.0)

    def test_remote_fraction(self):
        net = NetworkModel()
        assert net.remote_fraction(1) == 0.0
        assert net.remote_fraction(10) == pytest.approx(0.9)
        with pytest.raises(ConfigurationError):
            net.remote_fraction(0)

    def test_transfer_floor(self):
        net = NetworkModel()
        # 334 GB shuffle over 10 slaves on 10 Gb/s links.
        floor = net.transfer_floor_seconds(334 * GB, 10)
        per_node_bytes = 334 * GB * 0.9 / 10
        assert floor == pytest.approx(per_node_bytes / TEN_GBPS)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ConfigurationError):
            NetworkModel().transfer_floor_seconds(-1.0, 2)

    def test_paper_assumption_network_not_bottleneck(self):
        # Section III-B1: the 10 Gb/s network is not the bottleneck for
        # GATK4's shuffle against either disk's floor.
        net = NetworkModel()
        shuffle = 334 * GB
        hdd_floor = shuffle / (10 * 15 * MB)  # HDD shuffle-read floor
        ssd_floor = shuffle / (10 * 480 * MB)
        assert not net.is_bottleneck(shuffle, 10, hdd_floor)
        assert not net.is_bottleneck(shuffle, 10, ssd_floor)

    def test_bottleneck_detection_on_slow_network(self):
        slow = NetworkModel(link_bandwidth=10 * MB)
        shuffle = 334 * GB
        ssd_floor = shuffle / (10 * 480 * MB)
        assert slow.is_bottleneck(shuffle, 10, ssd_floor)
