"""Unit tests for cluster nodes."""

import pytest

from repro.cluster.node import Node
from repro.errors import ConfigurationError
from repro.storage.device import make_hdd, make_ssd
from repro.units import GB


def make_node(shared=False, **overrides):
    hdfs_device = make_ssd("n-hdfs")
    local_device = hdfs_device if shared else make_hdd("n-local")
    defaults = dict(
        name="slave-0",
        num_cores=36,
        ram_bytes=128 * GB,
        hdfs_device=hdfs_device,
        local_device=local_device,
    )
    defaults.update(overrides)
    return Node(**defaults)


class TestNode:
    def test_basic_fields(self):
        node = make_node()
        assert node.num_cores == 36
        assert node.ram_bytes == pytest.approx(128 * GB)
        assert not node.shares_device

    def test_shared_device_detection(self):
        assert make_node(shared=True).shares_device

    def test_local_dir_bound_to_local_device(self):
        node = make_node()
        assert node.local_dir.device is node.local_device

    def test_device_for_roles(self):
        node = make_node()
        assert node.device_for("hdfs") is node.hdfs_device
        assert node.device_for("local") is node.local_device
        with pytest.raises(ConfigurationError):
            node.device_for("scratch")

    def test_invalid_cores(self):
        with pytest.raises(ConfigurationError):
            make_node(num_cores=0)

    def test_invalid_ram(self):
        with pytest.raises(ConfigurationError):
            make_node(ram_bytes=0.0)

    def test_repr_mentions_kinds(self):
        assert "ssd" in repr(make_node())
