"""Unit tests for cluster assembly and the Table III configurations."""

import pytest

from repro.cluster.cluster import (
    Cluster,
    HYBRID_CONFIGS,
    HybridDiskConfig,
    make_paper_cluster,
)
from repro.cluster.node import Node
from repro.errors import ConfigurationError
from repro.storage.device import make_hdd, make_ssd
from repro.units import GB


class TestHybridConfigs:
    def test_table_iii_has_four_columns(self):
        assert len(HYBRID_CONFIGS) == 4
        assert [c.config_id for c in HYBRID_CONFIGS] == [1, 2, 3, 4]

    def test_config_1_is_2ssd(self):
        assert HYBRID_CONFIGS[0].shorthand == "2SSD"

    def test_config_4_is_2hdd(self):
        assert HYBRID_CONFIGS[3].shorthand == "2HDD"

    def test_mixed_labels(self):
        assert "HDFS=HDD" in HYBRID_CONFIGS[1].label
        assert "Local=SSD" in HYBRID_CONFIGS[1].label
        assert "local" in HYBRID_CONFIGS[1].shorthand


class TestMakePaperCluster:
    def test_four_node_motivation_cluster(self):
        cluster = make_paper_cluster(3, HYBRID_CONFIGS[0])
        assert cluster.num_slaves == 3
        assert cluster.cores_per_node == 36
        assert cluster.total_cores == 108

    def test_device_kinds_follow_config(self):
        cluster = make_paper_cluster(2, HYBRID_CONFIGS[2])  # HDFS=SSD, local=HDD
        for node in cluster.slaves:
            assert node.hdfs_device.kind == "ssd"
            assert node.local_device.kind == "hdd"
            assert not node.shares_device

    def test_hdfs_replication_capped_by_nodes(self):
        cluster = make_paper_cluster(1, HYBRID_CONFIGS[0])
        assert cluster.hdfs.replication == 1

    def test_invalid_slave_count(self):
        with pytest.raises(ConfigurationError):
            make_paper_cluster(0, HYBRID_CONFIGS[0])

    def test_unknown_device_kind(self):
        bad = HybridDiskConfig(9, hdfs_kind="nvme", local_kind="ssd")
        with pytest.raises(ConfigurationError):
            make_paper_cluster(1, bad)


class TestCluster:
    def _nodes(self, count=2, cores=36):
        return [
            Node(
                name=f"s{i}", num_cores=cores, ram_bytes=128 * GB,
                hdfs_device=make_ssd(f"s{i}-h", capacity_bytes=GB * 500),
                local_device=make_hdd(f"s{i}-l"),
            )
            for i in range(count)
        ]

    def test_requires_slaves(self):
        with pytest.raises(ConfigurationError):
            Cluster(slaves=[])

    def test_duplicate_names_rejected(self):
        nodes = self._nodes(2)
        nodes[1].name = nodes[0].name
        with pytest.raises(ConfigurationError):
            Cluster(slaves=nodes)

    def test_node_lookup(self):
        cluster = Cluster(slaves=self._nodes(2))
        assert cluster.node("s1").name == "s1"
        with pytest.raises(ConfigurationError):
            cluster.node("s9")

    def test_heterogeneous_cores_rejected_on_access(self):
        nodes = self._nodes(1, cores=36) + self._nodes(1, cores=12)
        nodes[1].name = "other"
        cluster = Cluster(slaves=nodes)
        with pytest.raises(ConfigurationError):
            _ = cluster.cores_per_node

    def test_device_lists(self):
        cluster = Cluster(slaves=self._nodes(3))
        assert len(cluster.local_devices()) == 3
        assert len(cluster.hdfs_devices()) == 3
        assert all(d.kind == "hdd" for d in cluster.local_devices())

    def test_hdfs_uses_hdfs_devices(self):
        cluster = Cluster(slaves=self._nodes(2))
        assert cluster.hdfs.devices == cluster.hdfs_devices()

    def test_repr(self):
        cluster = Cluster(slaves=self._nodes(2))
        assert "2 slaves" in repr(cluster)
