"""Unit tests for sweep helpers."""

import pytest

from repro.analysis.sweep import sweep_cores, sweep_local_disk_sizes
from repro.cluster import HYBRID_CONFIGS, make_paper_cluster


class TestSweepCores:
    def test_points_shape(self, gatk4_workload, gatk4_predictor):
        cluster = make_paper_cluster(3, HYBRID_CONFIGS[0])
        points = sweep_cores(gatk4_workload, gatk4_predictor, cluster, [6, 12])
        assert [p.x for p in points] == [6.0, 12.0]
        for point in points:
            assert {sp.label.split("@")[0] for sp in point.stage_points} == {
                "MD", "BR", "SF",
            }
            assert point.total.measured > 0
            assert point.total.predicted > 0

    def test_errors_reasonable(self, gatk4_workload, gatk4_predictor):
        cluster = make_paper_cluster(3, HYBRID_CONFIGS[0])
        points = sweep_cores(gatk4_workload, gatk4_predictor, cluster, [12])
        assert points[0].total.error < 0.15


class TestSweepDiskSizes:
    def test_runtime_decreases_then_flattens(self, gatk4_predictor):
        # Fig. 14's shape: growing the HDD local disk keeps buying IOPS
        # until the per-disk IOPS cap / compute bound is reached, after
        # which the curve is flat.  (The paper's testbed flattens at 2 TB;
        # our disk spec's 3000-IOPS cap binds at 4 TB.)
        results = sweep_local_disk_sizes(
            gatk4_predictor,
            sizes_gb=[200, 500, 1000, 2000, 4000, 6000, 8000],
            num_workers=10,
            cores_per_node=16,
        )
        runtimes = [seconds for _, seconds in results]
        # Monotone non-increasing...
        assert all(a >= b - 1e-6 for a, b in zip(runtimes, runtimes[1:]))
        # ...with a clear drop early and a flat tail.
        assert runtimes[0] > 1.5 * runtimes[2]
        assert runtimes[-2] == pytest.approx(runtimes[-1], rel=0.02)

    def test_sizes_echoed(self, gatk4_predictor):
        results = sweep_local_disk_sizes(
            gatk4_predictor, sizes_gb=[500], num_workers=10, cores_per_node=16
        )
        assert results[0][0] == 500
