"""Unit tests for ASCII figure rendering."""

import pytest

from repro.analysis.figures import (
    FigureError,
    render_bars,
    render_grouped_bars,
    render_sparkline,
)


class TestRenderBars:
    def test_scaling_to_peak(self):
        text = render_bars("t", {"big": 10.0, "half": 5.0}, width=10)
        lines = text.splitlines()
        assert lines[0] == "t"
        assert lines[1].count("#") == 10
        assert lines[2].count("#") == 5

    def test_unit_suffix(self):
        text = render_bars("t", {"a": 2.0}, width=4, unit="min")
        assert "2.0min" in text

    def test_zero_values_render_empty_bars(self):
        text = render_bars("t", {"a": 0.0, "b": 0.0}, width=5)
        assert "#" not in text

    def test_validation(self):
        with pytest.raises(FigureError):
            render_bars("t", {})
        with pytest.raises(FigureError):
            render_bars("t", {"a": -1.0})
        with pytest.raises(FigureError):
            render_bars("t", {"a": 1.0}, width=0)


class TestRenderGroupedBars:
    def test_shared_scale_across_groups(self):
        text = render_grouped_bars(
            "t",
            {"g1": {"x": 10.0}, "g2": {"x": 5.0}},
            width=10,
        )
        lines = text.splitlines()
        assert lines[1] == "[g1]"
        assert lines[2].count("#") == 10
        assert lines[4].count("#") == 5

    def test_validation(self):
        with pytest.raises(FigureError):
            render_grouped_bars("t", {})
        with pytest.raises(FigureError):
            render_grouped_bars("t", {"g": {}})
        with pytest.raises(FigureError):
            render_grouped_bars("t", {"g": {"a": -1.0}})


class TestSparkline:
    def test_monotone_curve(self):
        line = render_sparkline([1.0, 2.0, 3.0, 4.0])
        assert len(line) == 4
        assert line[0] < line[-1]

    def test_flat_curve(self):
        assert render_sparkline([2.0, 2.0, 2.0]) == "▁▁▁"

    def test_empty_rejected(self):
        with pytest.raises(FigureError):
            render_sparkline([])

    def test_fig14_shape_reads_as_descending(self):
        # The Fig. 14 runtime curve: falls then flattens.
        runtimes = [299.2, 120.4, 61.9, 35.2, 26.5]
        line = render_sparkline(runtimes)
        assert line[0] == "█"
        assert line[-1] == "▁"
