"""Unit tests for error metrics."""

import pytest

from repro.analysis.errors import (
    ExpVsModel,
    average_error,
    error_summary,
    max_error,
    relative_error,
)
from repro.errors import ModelError


class TestRelativeError:
    def test_basic(self):
        assert relative_error(100.0, 110.0) == pytest.approx(0.10)
        assert relative_error(100.0, 90.0) == pytest.approx(0.10)

    def test_perfect(self):
        assert relative_error(5.0, 5.0) == 0.0

    def test_invalid_measured(self):
        with pytest.raises(ModelError):
            relative_error(0.0, 1.0)


class TestAggregates:
    @pytest.fixture()
    def points(self):
        return [
            ExpVsModel("a", 100.0, 105.0),
            ExpVsModel("b", 100.0, 90.0),
            ExpVsModel("c", 200.0, 200.0),
        ]

    def test_point_error(self, points):
        assert points[0].error == pytest.approx(0.05)

    def test_average(self, points):
        assert average_error(points) == pytest.approx((0.05 + 0.10 + 0.0) / 3)

    def test_max(self, points):
        assert max_error(points) == pytest.approx(0.10)

    def test_summary_string(self, points):
        summary = error_summary(points)
        assert "avg 5.0%" in summary
        assert "max 10.0%" in summary
        assert "3 points" in summary

    def test_empty_rejected(self):
        with pytest.raises(ModelError):
            average_error([])
        with pytest.raises(ModelError):
            max_error([])
