"""Unit tests for report rendering."""

import pytest

from repro.analysis.report import format_row, render_series, render_table


class TestFormatRow:
    def test_padding(self):
        row = format_row(["a", 42], [3, 5])
        assert row == "a    42"

    def test_no_trailing_whitespace(self):
        assert not format_row(["x"], [10]).endswith(" ")


class TestRenderTable:
    def test_structure(self):
        text = render_table(
            "Table IV", ["stage", "GB"], [["MD", 122], ["BR", 334]]
        )
        lines = text.splitlines()
        assert lines[0] == "Table IV"
        assert "stage" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert "MD" in lines[3] and "BR" in lines[4]

    def test_column_widths_fit_long_cells(self):
        text = render_table("t", ["x"], [["a-very-long-cell"]])
        assert "a-very-long-cell" in text

    def test_mismatched_row_rejected(self):
        with pytest.raises(ValueError):
            render_table("t", ["a", "b"], [["only-one"]])


class TestRenderSeries:
    def test_structure(self):
        text = render_series(
            "Fig 3", "P", {"2SSD": [10.0, 5.0], "2HDD": [20.0, 20.0]}, [12, 36]
        )
        assert "Fig 3" in text
        assert "2SSD" in text and "2HDD" in text
        assert "20.0" in text

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            render_series("f", "x", {"s": [1.0]}, [1, 2])

    def test_custom_format(self):
        text = render_series("f", "x", {"s": [1.234]}, [1], value_format="{:.3f}")
        assert "1.234" in text
