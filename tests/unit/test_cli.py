"""Unit tests for the command-line interface."""

import pytest

from repro.cli import WORKLOADS, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_fio_defaults(self):
        args = build_parser().parse_args(["fio"])
        assert args.device == "hdd"
        assert not args.write

    def test_predict_arguments(self):
        args = build_parser().parse_args(
            ["predict", "--workload", "svm", "--slaves", "5",
             "--cores", "12", "--hdfs", "hdd", "--local", "ssd"]
        )
        assert args.workload == "svm"
        assert args.slaves == 5
        assert args.cores == 12

    def test_simulate_arguments(self):
        args = build_parser().parse_args(
            ["simulate", "svm", "--slaves", "4", "--cores", "8",
             "--network-gbps", "1"]
        )
        assert args.workload == "svm"
        assert args.slaves == 4
        assert args.cores == 8
        assert args.network_gbps == 1.0

    def test_simulate_network_defaults_off(self):
        args = build_parser().parse_args(["simulate", "svm"])
        assert args.network_gbps is None


class TestCommands:
    def test_list_workloads(self, capsys):
        assert main(["list-workloads"]) == 0
        out = capsys.readouterr().out
        for name in WORKLOADS:
            assert name in out

    def test_fio_read_sweep(self, capsys):
        assert main(["fio", "--device", "hdd"]) == 0
        out = capsys.readouterr().out
        assert "30.0KB" in out
        assert "15.0" in out  # the paper's 15 MB/s anchor

    def test_fio_write_sweep(self, capsys):
        assert main(["fio", "--device", "ssd", "--write"]) == 0
        assert "write" in capsys.readouterr().out

    def test_unknown_workload_exits(self):
        with pytest.raises(SystemExit):
            main(["profile", "--workload", "nope"])

    def test_profile_small_workload(self, capsys):
        # SVM is the fastest built-in to profile.
        assert main(["profile", "--workload", "svm", "--nodes", "2"]) == 0
        out = capsys.readouterr().out
        assert "dataValidator" in out
        assert "t_avg" in out

    def test_predict_small_workload(self, capsys):
        assert main(
            ["predict", "--workload", "svm", "--slaves", "4", "--cores", "8",
             "--hdfs", "ssd", "--local", "hdd", "--profile-nodes", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "TOTAL" in out
        assert "bottleneck" in out

    def test_simulate_small_workload(self, capsys):
        assert main(["simulate", "svm", "--slaves", "2", "--cores", "4"]) == 0
        out = capsys.readouterr().out
        assert "TOTAL" in out
        assert "core util" in out
        assert "iostat request-size summary" in out
        assert "avgrq-sz" in out

    def test_simulate_with_network(self, capsys):
        assert main(
            ["simulate", "svm", "--slaves", "2", "--cores", "4",
             "--network-gbps", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "1 Gb/s NIC" in out
        assert "nic" in out  # NIC rows in the utilization table
