"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import WORKLOADS, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_fio_defaults(self):
        args = build_parser().parse_args(["fio"])
        assert args.device == "hdd"
        assert not args.write

    def test_predict_arguments(self):
        args = build_parser().parse_args(
            ["predict", "--workload", "svm", "--slaves", "5",
             "--cores", "12", "--hdfs", "hdd", "--local", "ssd"]
        )
        assert args.workload == "svm"
        assert args.slaves == 5
        assert args.cores == 12

    def test_simulate_arguments(self):
        args = build_parser().parse_args(
            ["simulate", "svm", "--slaves", "4", "--cores", "8",
             "--network-gbps", "1"]
        )
        assert args.workload == "svm"
        assert args.slaves == 4
        assert args.cores == 8
        assert args.network_gbps == 1.0

    def test_simulate_network_defaults_off(self):
        args = build_parser().parse_args(["simulate", "svm"])
        assert args.network_gbps is None

    def test_resilience_flags_default_off(self):
        for command in (["simulate", "svm"], ["pipeline", "--workload", "svm"]):
            args = build_parser().parse_args(command)
            assert args.speculation is False
            assert args.max_task_attempts is None
            assert args.blacklist is False

    def test_workers_flag_defaults_to_serial(self):
        for command in (
            ["pipeline", "--workload", "svm"],
            ["optimize", "--workload", "gatk4"],
        ):
            assert build_parser().parse_args(command).workers is None

    def test_optimize_cluster_and_prune_flags(self):
        args = build_parser().parse_args(["optimize", "--workload", "gatk4"])
        assert args.cluster_workers == 10
        assert args.prune is False
        args = build_parser().parse_args(
            ["optimize", "--workload", "gatk4", "--cluster-workers", "6",
             "--prune", "--workers", "2"]
        )
        assert args.cluster_workers == 6
        assert args.prune is True
        assert args.workers == 2

    def test_optimize_top_and_json_flags(self):
        args = build_parser().parse_args(["optimize", "--workload", "gatk4"])
        assert args.top == 1
        assert args.json is False
        args = build_parser().parse_args(
            ["optimize", "--workload", "gatk4", "--top", "5", "--json"]
        )
        assert args.top == 5
        assert args.json is True


class TestCommands:
    def test_list_workloads(self, capsys):
        assert main(["list-workloads"]) == 0
        out = capsys.readouterr().out
        for name in WORKLOADS:
            assert name in out

    def test_fio_read_sweep(self, capsys):
        assert main(["fio", "--device", "hdd"]) == 0
        out = capsys.readouterr().out
        assert "30.0KB" in out
        assert "15.0" in out  # the paper's 15 MB/s anchor

    def test_fio_write_sweep(self, capsys):
        assert main(["fio", "--device", "ssd", "--write"]) == 0
        assert "write" in capsys.readouterr().out

    def test_unknown_workload_maps_to_config_exit_code(self, capsys):
        assert main(["profile", "--workload", "nope"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error[ConfigurationError]:")
        assert "nope" in err

    def test_unreadable_fault_plan_maps_to_fault_exit_code(self, capsys, tmp_path):
        missing = tmp_path / "no-such-plan.json"
        assert main(["simulate", "svm", "--fault-plan", str(missing)]) == 4
        captured = capsys.readouterr()
        assert captured.err.startswith("error[FaultError]:")
        assert "\n" not in captured.err.strip()  # one structured line
        assert "Traceback" not in captured.err

    def test_bad_resilience_knob_maps_to_config_exit_code(self, capsys):
        assert main(["simulate", "svm", "--max-task-attempts", "0"]) == 2
        assert capsys.readouterr().err.startswith("error[ConfigurationError]:")

    def test_profile_small_workload(self, capsys):
        # SVM is the fastest built-in to profile.
        assert main(["profile", "--workload", "svm", "--nodes", "2"]) == 0
        out = capsys.readouterr().out
        assert "dataValidator" in out
        assert "t_avg" in out

    def test_predict_small_workload(self, capsys):
        assert main(
            ["predict", "--workload", "svm", "--slaves", "4", "--cores", "8",
             "--hdfs", "ssd", "--local", "hdd", "--profile-nodes", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "TOTAL" in out
        assert "bottleneck" in out

    def test_simulate_small_workload(self, capsys):
        assert main(["simulate", "svm", "--slaves", "2", "--cores", "4"]) == 0
        out = capsys.readouterr().out
        assert "TOTAL" in out
        assert "core util" in out
        assert "iostat request-size summary" in out
        assert "avgrq-sz" in out

    def test_simulate_with_network(self, capsys):
        assert main(
            ["simulate", "svm", "--slaves", "2", "--cores", "4",
             "--network-gbps", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "1 Gb/s NIC" in out
        assert "nic" in out  # NIC rows in the utilization table


class TestJsonOutput:
    def test_simulate_json(self, capsys):
        assert main(
            ["simulate", "svm", "--slaves", "2", "--cores", "4", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["workload"] == "SVM"
        assert payload["slaves"] == 2
        assert payload["cores_per_node"] == 4
        assert payload["total_seconds"] > 0
        assert all(s["makespan_seconds"] > 0 for s in payload["stages"])
        assert all(
            entry["direction"] in ("read", "write")
            for entry in payload["iostat"] + payload["device_utilizations"]
        )

    def test_simulate_json_matches_runner(self, capsys):
        from repro.cli import WORKLOADS
        from repro.cluster import HYBRID_CONFIGS, make_paper_cluster
        from repro.workloads.runner import measure_workload

        assert main(
            ["simulate", "svm", "--slaves", "2", "--cores", "4", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        direct = measure_workload(
            make_paper_cluster(2, HYBRID_CONFIGS[0]), 4, WORKLOADS["svm"]()
        )
        assert payload["total_seconds"] == direct.total_seconds


class TestPipelineCommand:
    def test_table_output(self, capsys):
        assert main(
            ["pipeline", "--workload", "svm", "--slaves", "2",
             "--cores", "4", "--profile-nodes", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "spec:SVM @ cluster[hdfs=ssd,local=ssd]" in out
        assert "TOTAL" in out
        assert "bottleneck" in out
        assert "cache:" in out

    def test_json_runs_and_cross_process_cache(self, capsys, tmp_path):
        cache = tmp_path / "cache.json"
        argv = [
            "pipeline", "--workload", "svm", "--slaves", "2", "--cores", "4",
            "--runs", "2", "--profile-nodes", "2", "--json",
            "--cache", str(cache),
        ]
        assert main(argv) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["experiment"] == "spec:SVM @ cluster[hdfs=ssd,local=ssd]"
        assert [run["run_index"] for run in payload["runs"]] == [0, 1]
        for run in payload["runs"]:
            assert run["measured_seconds"] > 0
            assert run["predicted_seconds"] > 0
            assert run["stages"]
        assert cache.exists()

        # A second invocation replays everything from the cache file and
        # must reproduce the records bit for bit.
        assert main(argv) == 0
        replayed = json.loads(capsys.readouterr().out)
        assert "100% hits" in replayed["cache"]["summary"]
        assert replayed["cache"]["hits"] > 0
        assert replayed["cache"]["measurements"]["entries"] > 0
        assert replayed["runs"] == payload["runs"]

    def test_workers_flag_reproduces_serial_json(self, capsys):
        argv = [
            "pipeline", "--workload", "svm", "--slaves", "2", "--cores", "4",
            "--runs", "2", "--profile-nodes", "2", "--json",
        ]
        assert main(argv) == 0
        serial = json.loads(capsys.readouterr().out)
        assert main(argv + ["--workers", "2"]) == 0
        parallel = json.loads(capsys.readouterr().out)
        assert parallel["runs"] == serial["runs"]

    def test_optimize_top_lists_ranked_configs(self, capsys):
        argv = [
            "optimize", "--workload", "svm", "--profile-nodes", "2",
            "--top", "3",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "optimum" in out
        assert "#2" in out
        assert "#3" in out
        assert "R1 (Spark)" in out
        assert "savings:" in out

    def test_optimize_json_payload(self, capsys):
        argv = [
            "optimize", "--workload", "svm", "--profile-nodes", "2",
            "--top", "2", "--prune", "--json",
        ]
        assert main(argv) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["workload"] == "SVM"
        assert payload["backend"] in ("python", "numpy")
        assert payload["num_pruned"] > 0
        assert [entry["rank"] for entry in payload["top"]] == [1, 2]
        # Ranked ascending by cost, and rank 1 is the search optimum.
        costs = [entry["cost_dollars"] for entry in payload["top"]]
        assert costs == sorted(costs)
        for reference in payload["references"].values():
            assert payload["top"][0]["cost_dollars"] <= reference["cost_dollars"]
        assert 0.0 < payload["savings_vs_r1"] < 1.0

    def test_optimize_top_must_be_positive(self, capsys):
        argv = ["optimize", "--workload", "svm", "--top", "0"]
        assert main(argv) == 2
        assert "ConfigurationError" in capsys.readouterr().err


class TestServiceCommands:
    def test_serve_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 8642
        assert args.lru_size == 1024
        assert args.batch_max == 32
        assert args.queue_cap == 16
        assert not args.warm

    def test_loadgen_parser_defaults(self):
        args = build_parser().parse_args(["loadgen"])
        assert args.url is None
        assert args.workload == "svm"
        assert args.distinct == 40
        assert args.duplicates == 5
        assert args.concurrency == 25

    def test_loadgen_in_process_json(self, capsys):
        argv = [
            "loadgen", "--workload", "lr-small", "--workloads", "lr-small",
            "--profile-nodes", "2", "--distinct", "4", "--duplicates", "3",
            "--concurrency", "8", "--json",
        ]
        assert main(argv) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["queries"] == 12
        assert summary["qps"] > 0
        assert "results" not in summary  # stripped: load, not signal
        engine = summary["engine"]
        assert engine["queries"] == 12
        # 4 distinct configs and 12 queries: 8 were answered without a
        # fresh evaluation, split between coalescing and the LRU.
        assert engine["coalesced"] + engine["lru"]["hits"] == 8
        assert engine["batches"]["flushed"] >= 1

    def test_loadgen_human_summary(self, capsys):
        argv = [
            "loadgen", "--workload", "lr-small", "--workloads", "lr-small",
            "--profile-nodes", "2", "--distinct", "2", "--duplicates", "2",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "4 queries in" in out
        assert "engine:" in out and "batch(es)" in out

    def test_loadgen_rejects_unknown_workload(self, capsys):
        argv = ["loadgen", "--workload", "nope"]
        assert main(argv) == 2
