"""Unit tests for the shuffle geometry model (Section III-C2)."""

import pytest

from repro.errors import WorkloadError
from repro.spark.shuffle import (
    ShufflePlan,
    mappers_for_hdfs_input,
    reducers_for_target_input,
    shuffle_read_request_size,
)
from repro.units import GB, KB, MB


class TestGatk4Geometry:
    """The exact numbers of Section III-C2."""

    @pytest.fixture()
    def plan(self):
        return ShufflePlan.from_reducer_target(
            total_bytes=334 * GB,
            num_mappers=973,
            target_bytes_per_reducer=27 * MB,
        )

    def test_m_is_973(self):
        assert mappers_for_hdfs_input(973 * 128 * MB, 128 * MB) == 973

    def test_reducer_count(self, plan):
        # 334 GB / 27 MB per reducer = 12,667 reduce tasks.
        assert plan.num_reducers == 12667

    def test_read_request_near_30kb(self, plan):
        # 27 MB / 973 mappers ~ 28 KB, the paper's "around 30 KB".
        assert plan.read_request_size == pytest.approx(28.4 * KB, rel=0.02)

    def test_avgrq_sz_near_60_sectors(self, plan):
        # iostat reports ~60 sectors of 512 B.
        assert 54 <= plan.avgrq_sz_sectors() <= 60

    def test_write_chunk_near_365mb(self, plan):
        # The paper quotes ~365 MB sorted chunks; exact arithmetic gives
        # 334 GB / 973 = 351.5 MB.
        assert plan.write_request_size == pytest.approx(351.5 * MB, rel=0.01)

    def test_reads_per_reducer_is_m(self, plan):
        assert plan.reads_per_reducer() == 973

    def test_total_segments(self, plan):
        assert plan.total_segments == 973 * 12667
        assert plan.segments_matrix_shape() == (973, 12667)


class TestHelpers:
    def test_request_size_formula(self):
        assert shuffle_read_request_size(100 * MB, 10, 10) == pytest.approx(1 * MB)

    def test_request_size_validation(self):
        with pytest.raises(WorkloadError):
            shuffle_read_request_size(0.0, 1, 1)
        with pytest.raises(WorkloadError):
            shuffle_read_request_size(1.0, 0, 1)

    def test_reducers_for_target(self):
        assert reducers_for_target_input(270 * MB, 27 * MB) == 10

    def test_reducers_minimum_one(self):
        assert reducers_for_target_input(1 * MB, 1 * GB) == 1

    def test_reducers_validation(self):
        with pytest.raises(WorkloadError):
            reducers_for_target_input(0.0, 1.0)

    def test_mappers_round_up(self):
        assert mappers_for_hdfs_input(129 * MB, 128 * MB) == 2

    def test_mappers_validation(self):
        with pytest.raises(WorkloadError):
            mappers_for_hdfs_input(0.0, 128 * MB)


class TestPlanValidation:
    def test_positive_fields_required(self):
        with pytest.raises(WorkloadError):
            ShufflePlan(total_bytes=0.0, num_mappers=1, num_reducers=1)
        with pytest.raises(WorkloadError):
            ShufflePlan(total_bytes=1.0, num_mappers=0, num_reducers=1)
        with pytest.raises(WorkloadError):
            ShufflePlan(total_bytes=1.0, num_mappers=1, num_reducers=0)

    def test_per_side_sizes(self):
        plan = ShufflePlan(total_bytes=100 * MB, num_mappers=4, num_reducers=10)
        assert plan.bytes_per_mapper == pytest.approx(25 * MB)
        assert plan.bytes_per_reducer == pytest.approx(10 * MB)
