"""Unit tests for the extended RDD operations (join/cogroup/distinct/...)."""

from collections import Counter

import pytest

from repro.errors import SchedulerError
from repro.spark.context import DoppioContext


@pytest.fixture()
def sc():
    return DoppioContext()


class TestDistinct:
    def test_removes_duplicates(self, sc):
        rdd = sc.parallelize([1, 2, 2, 3, 3, 3], 3).distinct(2)
        assert sorted(rdd.collect()) == [1, 2, 3]

    def test_already_unique(self, sc):
        assert sorted(sc.parallelize([4, 5, 6], 2).distinct().collect()) == [4, 5, 6]

    def test_empty(self, sc):
        assert sc.parallelize([], 1).distinct().collect() == []

    def test_is_a_shuffle(self, sc):
        from repro.spark.dag import shuffle_dependencies

        rdd = sc.parallelize([1, 1], 1).distinct(2)
        assert len(shuffle_dependencies(rdd)) == 1


class TestSortBy:
    def test_sorts_by_key_function(self, sc):
        rdd = sc.parallelize(["ccc", "a", "bb"], 2).sort_by(len, 2)
        assert rdd.collect() == ["a", "bb", "ccc"]

    def test_preserves_multiset(self, sc):
        data = [3, 1, 2, 1, 3, 3]
        result = sc.parallelize(data, 3).sort_by(lambda x: x, 2).collect()
        assert Counter(result) == Counter(data)
        assert result == sorted(data)


class TestCogroup:
    def test_groups_both_sides(self, sc):
        left = sc.parallelize([("a", 1), ("b", 2), ("a", 3)], 2)
        right = sc.parallelize([("a", "x"), ("c", "y")], 2)
        result = dict(left.cogroup(right, 2).collect())
        lefts, rights = result["a"]
        assert sorted(lefts) == [1, 3]
        assert rights == ["x"]
        assert result["b"] == ([2], [])
        assert result["c"] == ([], ["y"])

    def test_requires_same_context(self, sc):
        other = DoppioContext()
        with pytest.raises(SchedulerError):
            sc.parallelize([("a", 1)], 1).cogroup(other.parallelize([("a", 2)], 1))


class TestJoin:
    def test_inner_join(self, sc):
        left = sc.parallelize([("a", 1), ("b", 2)], 2)
        right = sc.parallelize([("a", "x"), ("a", "y"), ("c", "z")], 2)
        joined = sorted(left.join(right, 2).collect())
        assert joined == [("a", (1, "x")), ("a", (1, "y"))]

    def test_matches_reference_join(self, sc):
        left_data = [(key % 5, key) for key in range(40)]
        right_data = [(key % 7, -key) for key in range(40)]
        joined = sc.parallelize(left_data, 4).join(
            sc.parallelize(right_data, 4), 4
        ).collect()
        reference = [
            (lk, (lv, rv))
            for lk, lv in left_data
            for rk, rv in right_data
            if lk == rk
        ]
        assert Counter(joined) == Counter(reference)

    def test_disjoint_keys_empty(self, sc):
        left = sc.parallelize([("a", 1)], 1)
        right = sc.parallelize([("b", 2)], 1)
        assert left.join(right, 2).collect() == []


class TestTakeOrderedAndGlom:
    def test_take_ordered(self, sc):
        rdd = sc.parallelize([5, 1, 4, 2, 3], 3)
        assert rdd.take_ordered(3) == [1, 2, 3]

    def test_take_ordered_with_key(self, sc):
        rdd = sc.parallelize(["bb", "a", "ccc"], 2)
        assert rdd.take_ordered(2, key_fn=len) == ["a", "bb"]

    def test_glom_partition_structure(self, sc):
        rdd = sc.parallelize(range(6), 3)
        partitions = rdd.glom()
        assert len(partitions) == 3
        assert [row for part in partitions for row in part] == list(range(6))
