"""Unit tests for lineage-to-stage planning."""

import pytest

from repro.spark.context import DoppioContext
from repro.spark.dag import build_stages, shuffle_dependencies


@pytest.fixture()
def sc():
    return DoppioContext()


class TestShuffleDependencies:
    def test_narrow_only_has_none(self, sc):
        rdd = sc.parallelize([1, 2], 2).map(lambda x: x).filter(bool)
        assert shuffle_dependencies(rdd) == []

    def test_single_shuffle(self, sc):
        rdd = sc.parallelize([("a", 1)], 1).group_by_key(2)
        deps = shuffle_dependencies(rdd)
        assert len(deps) == 1
        assert deps[0].name == "groupByKey"

    def test_chained_shuffles_ordered(self, sc):
        rdd = (
            sc.parallelize([("a", 1)], 1)
            .group_by_key(2)
            .map(lambda kv: (kv[0], len(kv[1])))
            .reduce_by_key(lambda a, b: a + b)
        )
        deps = shuffle_dependencies(rdd)
        assert [d.name for d in deps] == ["groupByKey", "reduceByKey"]

    def test_diamond_visited_once(self, sc):
        base = sc.parallelize([("a", 1)], 1).group_by_key(2)
        union = base.map(lambda x: x).union(base.filter(lambda x: True))
        deps = shuffle_dependencies(union)
        assert len(deps) == 1


class TestBuildStages:
    def test_narrow_job_single_stage(self, sc):
        rdd = sc.parallelize([1], 1).map(lambda x: x)
        stages = build_stages(rdd)
        assert len(stages) == 1
        assert stages[0].is_result_stage
        assert stages[0].boundary is rdd

    def test_shuffle_job_two_stages(self, sc):
        rdd = sc.parallelize([("a", 1), ("b", 2), ("c", 3)], 3).group_by_key(5)
        stages = build_stages(rdd)
        assert len(stages) == 2
        map_stage, result_stage = stages
        assert not map_stage.is_result_stage
        assert map_stage.num_tasks == 3  # parent partitions
        assert result_stage.num_tasks == 5  # reducer partitions
        assert "groupByKey" in map_stage.name

    def test_stage_ids_sequential(self, sc):
        rdd = (
            sc.parallelize([("a", 1)], 1)
            .group_by_key(2)
            .map(lambda kv: (kv[0], 1))
            .reduce_by_key(lambda a, b: a + b)
        )
        stages = build_stages(rdd)
        assert [s.stage_id for s in stages] == [0, 1, 2]
