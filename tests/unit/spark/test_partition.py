"""Unit tests for partitions and partitioners."""

import pytest

from repro.errors import SchedulerError
from repro.spark.partition import (
    HashPartitioner,
    Partition,
    RangePartitioner,
    estimate_bytes,
)


class TestPartition:
    def test_row_count(self):
        assert Partition(index=0, rows=(1, 2, 3)).num_rows == 3

    def test_estimate_bytes_positive(self):
        assert estimate_bytes(["hello", "world"]) > 0

    def test_estimate_bytes_empty(self):
        assert estimate_bytes([]) == 0.0


class TestHashPartitioner:
    def test_deterministic(self):
        partitioner = HashPartitioner(8)
        assert partitioner.partition_of("key") == partitioner.partition_of("key")

    def test_in_range(self):
        partitioner = HashPartitioner(8)
        for key in range(1000):
            assert 0 <= partitioner.partition_of(key) < 8

    def test_equality(self):
        assert HashPartitioner(4) == HashPartitioner(4)
        assert HashPartitioner(4) != HashPartitioner(8)
        assert hash(HashPartitioner(4)) == hash(HashPartitioner(4))

    def test_invalid_count(self):
        with pytest.raises(SchedulerError):
            HashPartitioner(0)


class TestRangePartitioner:
    def test_boundaries_route_correctly(self):
        partitioner = RangePartitioner([10, 20])
        assert partitioner.num_partitions == 3
        assert partitioner.partition_of(5) == 0
        assert partitioner.partition_of(10) == 0
        assert partitioner.partition_of(15) == 1
        assert partitioner.partition_of(25) == 2

    def test_from_sample_balanced(self):
        keys = list(range(100))
        partitioner = RangePartitioner.from_sample(keys, 4)
        assert partitioner.num_partitions == 4
        counts = [0] * 4
        for key in keys:
            counts[partitioner.partition_of(key)] += 1
        assert max(counts) - min(counts) <= 2

    def test_from_sample_preserves_order(self):
        keys = [5, 3, 9, 1, 7]
        partitioner = RangePartitioner.from_sample(keys, 3)
        previous = -1
        for key in sorted(keys):
            index = partitioner.partition_of(key)
            assert index >= previous
            previous = index

    def test_single_partition(self):
        partitioner = RangePartitioner.from_sample([1, 2, 3], 1)
        assert partitioner.num_partitions == 1
        assert partitioner.partition_of(99) == 0

    def test_empty_sample(self):
        partitioner = RangePartitioner.from_sample([], 4)
        assert partitioner.num_partitions == 1

    def test_duplicate_keys_deduplicated(self):
        partitioner = RangePartitioner.from_sample([1, 1, 1, 1], 4)
        # All boundaries collapse to one.
        assert partitioner.num_partitions <= 2

    def test_invalid_count(self):
        with pytest.raises(SchedulerError):
            RangePartitioner.from_sample([1], 0)
