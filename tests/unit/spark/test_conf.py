"""Unit tests for SparkConf."""

import pytest

from repro.errors import ConfigurationError
from repro.spark.conf import PAPER_SPARK_CONF, SparkConf
from repro.units import GB


class TestSparkConf:
    def test_table_ii_defaults(self):
        assert PAPER_SPARK_CONF.worker_cores == 36
        assert PAPER_SPARK_CONF.worker_memory_bytes == pytest.approx(90 * GB)
        assert PAPER_SPARK_CONF.storage_memory_fraction == 0.40

    def test_storage_memory(self):
        conf = SparkConf(worker_memory_bytes=90 * GB, storage_memory_fraction=0.4)
        assert conf.storage_memory_bytes == pytest.approx(36 * GB)

    def test_cluster_storage_memory(self):
        # The paper's ten-slave cluster caches up to 360 GB.
        assert PAPER_SPARK_CONF.cluster_storage_memory_bytes(10) == pytest.approx(
            360 * GB
        )

    def test_invalid_cores(self):
        with pytest.raises(ConfigurationError):
            SparkConf(worker_cores=0)

    def test_invalid_memory(self):
        with pytest.raises(ConfigurationError):
            SparkConf(worker_memory_bytes=0.0)

    def test_invalid_fraction(self):
        with pytest.raises(ConfigurationError):
            SparkConf(storage_memory_fraction=0.0)
        with pytest.raises(ConfigurationError):
            SparkConf(storage_memory_fraction=1.5)

    def test_invalid_parallelism(self):
        with pytest.raises(ConfigurationError):
            SparkConf(default_parallelism=0)

    def test_invalid_slave_count(self):
        with pytest.raises(ConfigurationError):
            PAPER_SPARK_CONF.cluster_storage_memory_bytes(0)
