"""Unit tests for DoppioContext."""

import pytest

from repro.errors import SchedulerError
from repro.spark.conf import SparkConf
from repro.spark.context import DoppioContext
from repro.units import GB


class TestParallelize:
    def test_even_split(self):
        sc = DoppioContext()
        rdd = sc.parallelize(range(10), 5)
        assert rdd.num_partitions == 5
        assert rdd.collect() == list(range(10))

    def test_uneven_split_balanced(self):
        sc = DoppioContext()
        rdd = sc.parallelize(range(10), 3)
        sizes = [len(rdd.compute_partition(i, sc.runtime)) for i in range(3)]
        assert sorted(sizes) == [3, 3, 4]

    def test_slices_capped_by_data(self):
        sc = DoppioContext()
        assert sc.parallelize([1, 2], 10).num_partitions == 2

    def test_empty_data_single_partition(self):
        sc = DoppioContext()
        rdd = sc.parallelize([])
        assert rdd.num_partitions == 1
        assert rdd.collect() == []

    def test_default_parallelism_used(self):
        sc = DoppioContext(conf=SparkConf(default_parallelism=4))
        assert sc.parallelize(range(100)).num_partitions == 4

    def test_invalid_slices(self):
        sc = DoppioContext()
        with pytest.raises(SchedulerError):
            sc.parallelize([1], 0)


class TestContext:
    def test_text_file(self):
        sc = DoppioContext()
        rdd = sc.text_file(["line1", "line2"], 1)
        assert rdd.collect() == ["line1", "line2"]

    def test_union_many(self):
        sc = DoppioContext()
        rdds = [sc.parallelize([i], 1) for i in range(4)]
        assert sorted(sc.union(rdds).collect()) == [0, 1, 2, 3]

    def test_union_empty_rejected(self):
        sc = DoppioContext()
        with pytest.raises(SchedulerError):
            sc.union([])

    def test_invalid_slaves(self):
        with pytest.raises(SchedulerError):
            DoppioContext(num_slaves=0)

    def test_cache_pool_scales_with_slaves(self):
        conf = SparkConf(worker_memory_bytes=10 * GB, storage_memory_fraction=0.5)
        one = DoppioContext(conf=conf, num_slaves=1)
        four = DoppioContext(conf=conf, num_slaves=4)
        assert four.runtime.memory.capacity_bytes == pytest.approx(
            4 * one.runtime.memory.capacity_bytes
        )
