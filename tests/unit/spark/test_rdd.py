"""Unit tests for the functional RDD API."""

import pytest

from repro.errors import SchedulerError
from repro.spark.context import DoppioContext
from repro.spark.rdd import DISK_ONLY, MEMORY_ONLY, NONE


@pytest.fixture()
def sc():
    return DoppioContext()


class TestTransformations:
    def test_map(self, sc):
        assert sc.parallelize([1, 2, 3], 2).map(lambda x: x * 2).collect() == [2, 4, 6]

    def test_filter(self, sc):
        rdd = sc.parallelize(range(10), 3).filter(lambda x: x % 2 == 0)
        assert rdd.collect() == [0, 2, 4, 6, 8]

    def test_flat_map(self, sc):
        rdd = sc.parallelize(["a b", "c"], 2).flat_map(str.split)
        assert rdd.collect() == ["a", "b", "c"]

    def test_map_partitions(self, sc):
        rdd = sc.parallelize(range(6), 3).map_partitions(lambda rows: [sum(rows)])
        assert sum(rdd.collect()) == 15
        assert rdd.num_partitions == 3

    def test_key_by_and_map_values(self, sc):
        rdd = sc.parallelize(["aa", "b"], 1).key_by(len).map_values(str.upper)
        assert rdd.collect() == [(2, "AA"), (1, "B")]

    def test_union(self, sc):
        left = sc.parallelize([1, 2], 2)
        right = sc.parallelize([3], 1)
        union = left.union(right)
        assert union.num_partitions == 3
        assert sorted(union.collect()) == [1, 2, 3]

    def test_union_requires_same_context(self, sc):
        other = DoppioContext()
        with pytest.raises(SchedulerError):
            sc.parallelize([1]).union(other.parallelize([2]))

    def test_chaining_is_lazy(self, sc):
        calls = []

        def spy(x):
            calls.append(x)
            return x

        rdd = sc.parallelize([1, 2, 3], 1).map(spy)
        assert calls == []  # nothing ran yet
        rdd.collect()
        assert calls == [1, 2, 3]


class TestShuffleTransformations:
    def test_group_by_key(self, sc):
        pairs = [("a", 1), ("b", 2), ("a", 3)]
        grouped = dict(sc.parallelize(pairs, 2).group_by_key(4).collect())
        assert sorted(grouped["a"]) == [1, 3]
        assert grouped["b"] == [2]

    def test_reduce_by_key(self, sc):
        pairs = [("a", 1), ("b", 2), ("a", 3), ("b", 5)]
        reduced = dict(sc.parallelize(pairs, 3).reduce_by_key(lambda a, b: a + b).collect())
        assert reduced == {"a": 4, "b": 7}

    def test_repartition(self, sc):
        rdd = sc.parallelize(range(100), 4).repartition(10)
        assert rdd.num_partitions == 10
        assert sorted(rdd.collect()) == list(range(100))

    def test_sort_by_key(self, sc):
        pairs = [(9, "i"), (1, "a"), (5, "e"), (3, "c")]
        result = sc.parallelize(pairs, 2).sort_by_key(2).collect()
        assert [k for k, _ in result] == [1, 3, 5, 9]

    def test_group_by_key_requires_pairs(self, sc):
        with pytest.raises(SchedulerError):
            sc.parallelize([1, 2, 3], 1).group_by_key(2).collect()


class TestActions:
    def test_count(self, sc):
        assert sc.parallelize(range(42), 5).count() == 42

    def test_take(self, sc):
        assert sc.parallelize(range(100), 10).take(5) == [0, 1, 2, 3, 4]

    def test_take_more_than_available(self, sc):
        assert sc.parallelize([1, 2], 1).take(10) == [1, 2]

    def test_reduce(self, sc):
        assert sc.parallelize(range(5), 2).reduce(lambda a, b: a + b) == 10

    def test_reduce_empty_raises(self, sc):
        with pytest.raises(SchedulerError):
            sc.parallelize([], 1).reduce(lambda a, b: a + b)

    def test_count_by_key(self, sc):
        pairs = [("x", 1), ("y", 1), ("x", 1)]
        assert sc.parallelize(pairs, 2).count_by_key() == {"x": 2, "y": 1}


class TestPersistence:
    def test_cache_marks_level(self, sc):
        rdd = sc.parallelize([1, 2], 1).map(lambda x: x)
        assert rdd.storage_level == NONE
        rdd.cache()
        assert rdd.storage_level == MEMORY_ONLY

    def test_persist_disk(self, sc):
        rdd = sc.parallelize([1], 1).persist(DISK_ONLY)
        assert rdd.storage_level == DISK_ONLY

    def test_invalid_level(self, sc):
        with pytest.raises(SchedulerError):
            sc.parallelize([1], 1).persist("OFF_HEAP")

    def test_cached_rdd_not_recomputed(self, sc):
        calls = []

        def spy(x):
            calls.append(x)
            return x

        rdd = sc.parallelize([1, 2, 3], 1).map(spy).cache()
        rdd.collect()
        rdd.collect()
        assert calls == [1, 2, 3]  # second collect served from cache

    def test_unpersist_recomputes(self, sc):
        calls = []

        def spy(x):
            calls.append(x)
            return x

        rdd = sc.parallelize([1], 1).map(spy).cache()
        rdd.collect()
        rdd.unpersist()
        assert rdd.storage_level == NONE
        rdd.collect()
        assert calls == [1, 1]

    def test_repr(self, sc):
        rdd = sc.parallelize([1, 2], 2)
        assert "partitions=2" in repr(rdd)
