"""Unit tests for the functional runtime (caching, shuffles, profiles)."""

import pytest

from repro.errors import SchedulerError
from repro.spark.conf import SparkConf
from repro.spark.context import DoppioContext
from repro.spark.rdd import DISK_ONLY
from repro.units import KB


@pytest.fixture()
def sc():
    return DoppioContext()


class TestShuffleMachinery:
    def test_shuffle_outputs_partition_by_key(self, sc):
        pairs = [(key, key) for key in range(100)]
        grouped = sc.parallelize(pairs, 4).group_by_key(8)
        collected = dict(grouped.collect())
        assert len(collected) == 100

    def test_shuffle_reused_across_jobs(self, sc):
        grouped = sc.parallelize([("a", 1)], 2).group_by_key(2)
        grouped.count()
        profiles_after_first = len(sc.stage_profiles)
        grouped.count()
        # Second job re-reads the materialized shuffle: only a result
        # stage is added, not another map stage.
        new_profiles = sc.stage_profiles[profiles_after_first:]
        assert all("result" in p.name for p in new_profiles)

    def test_segments_for_unrun_shuffle_rejected(self, sc):
        grouped = sc.parallelize([("a", 1)], 1).group_by_key(2)
        with pytest.raises(SchedulerError):
            sc.runtime.shuffle_segments_for(grouped, 0)

    def test_segment_count(self, sc):
        pairs = [(key % 4, key) for key in range(64)]
        grouped = sc.parallelize(pairs, 4).group_by_key(4)
        grouped.count()
        count = sc.runtime.shuffle_segment_count(grouped)
        # 4 distinct keys hashed over 4 reducers from 4 mappers: at most
        # 16 non-empty segments.
        assert 4 <= count <= 16


class TestCachingRuntime:
    def test_memory_eviction_spills_to_disk(self):
        # A pool sized to hold roughly one partition: later partitions
        # evict earlier ones, demoting them to the disk store.
        conf = SparkConf(worker_memory_bytes=60 * KB, storage_memory_fraction=0.5)
        sc = DoppioContext(conf=conf)
        rdd = sc.parallelize(list(range(3000)), 4).map(lambda x: x).cache()
        rdd.collect()
        # The pool can't hold all four partitions; spills happened.
        assert sc.runtime.disk_spill_bytes > 0
        # Results still correct.
        assert sorted(rdd.collect()) == list(range(3000))

    def test_disk_only_accounting(self, sc):
        rdd = sc.parallelize([1, 2, 3], 1).persist(DISK_ONLY)
        rdd.collect()
        assert sc.runtime.disk_spill_bytes > 0

    def test_drop_cached(self, sc):
        rdd = sc.parallelize([1, 2], 1).cache()
        rdd.collect()
        assert sc.runtime.cached_memory_bytes > 0
        sc.runtime.drop_cached(rdd)
        assert sc.runtime.cached_memory_bytes == 0.0


class TestStageProfiles:
    def test_map_stage_profile_records_shuffle(self, sc):
        pairs = [(key % 5, "x" * 50) for key in range(200)]
        sc.parallelize(pairs, 4).group_by_key(5).count()
        map_profiles = [p for p in sc.stage_profiles if p.shuffle_write_bytes > 0]
        assert len(map_profiles) == 1
        profile = map_profiles[0]
        assert profile.num_tasks == 4
        assert profile.num_mappers == 4
        assert profile.num_reducers == 5

    def test_result_stage_profile_present(self, sc):
        sc.parallelize([1], 1).count()
        assert any("result" in p.name for p in sc.stage_profiles)
