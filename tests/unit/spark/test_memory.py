"""Unit tests for storage-memory management and the caching decision rule."""

import pytest

from repro.errors import ConfigurationError
from repro.spark.conf import SparkConf
from repro.spark.memory import (
    StorageMemoryManager,
    fits_in_storage_memory,
    required_slaves_to_cache,
)
from repro.units import GB


class TestCachingDecision:
    def test_paper_union_rdd_cannot_be_cached(self):
        # Section III-B2: the 870 GB markedReads RDD does not fit the
        # ten-slave cluster's 360 GB of storage memory.
        conf = SparkConf()
        assert not fits_in_storage_memory(870 * GB, num_slaves=10, conf=conf)

    def test_paper_25_node_requirement(self):
        # 870 GB at 36 GB of storage memory per node -> ~25 slaves.
        assert required_slaves_to_cache(870 * GB, SparkConf()) == 25

    def test_small_rdd_fits(self):
        assert fits_in_storage_memory(280 * GB, num_slaves=10, conf=SparkConf())

    def test_zero_size_fits_everywhere(self):
        assert fits_in_storage_memory(0.0, num_slaves=1, conf=SparkConf())
        assert required_slaves_to_cache(0.0, SparkConf()) == 1

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            fits_in_storage_memory(-1.0, 1, SparkConf())
        with pytest.raises(ConfigurationError):
            required_slaves_to_cache(-1.0, SparkConf())


class TestStorageMemoryManager:
    def test_put_and_get(self):
        pool = StorageMemoryManager(100.0)
        assert pool.put("a", 40.0) == []
        assert pool.get("a")
        assert pool.used_bytes == 40.0
        assert pool.free_bytes == 60.0

    def test_lru_eviction_order(self):
        pool = StorageMemoryManager(100.0)
        pool.put("a", 40.0)
        pool.put("b", 40.0)
        evicted = pool.put("c", 40.0)
        assert [e.block_id for e in evicted] == ["a"]
        assert pool.cached_blocks() == ["b", "c"]

    def test_get_refreshes_recency(self):
        pool = StorageMemoryManager(100.0)
        pool.put("a", 40.0)
        pool.put("b", 40.0)
        pool.get("a")  # a becomes most recent
        evicted = pool.put("c", 40.0)
        assert [e.block_id for e in evicted] == ["b"]

    def test_oversized_block_not_cached(self):
        pool = StorageMemoryManager(100.0)
        assert pool.put("huge", 200.0) == []
        assert not pool.contains("huge")
        assert pool.used_bytes == 0.0

    def test_duplicate_put_is_touch(self):
        pool = StorageMemoryManager(100.0)
        pool.put("a", 40.0)
        pool.put("b", 40.0)
        pool.put("a", 40.0)  # refresh, not duplicate
        assert pool.used_bytes == 80.0
        evicted = pool.put("c", 40.0)
        assert [e.block_id for e in evicted] == ["b"]

    def test_remove(self):
        pool = StorageMemoryManager(100.0)
        pool.put("a", 10.0)
        assert pool.remove("a")
        assert not pool.remove("a")
        assert pool.used_bytes == 0.0

    def test_multi_eviction(self):
        pool = StorageMemoryManager(100.0)
        for name in "abcd":
            pool.put(name, 25.0)
        evicted = pool.put("e", 75.0)
        assert [e.block_id for e in evicted] == ["a", "b", "c"]

    def test_invalid_capacity(self):
        with pytest.raises(ConfigurationError):
            StorageMemoryManager(0.0)

    def test_negative_block(self):
        pool = StorageMemoryManager(10.0)
        with pytest.raises(ConfigurationError):
            pool.put("x", -1.0)
