"""Unit tests for stage runtime profiles and spec conversion."""

import pytest

from repro.errors import WorkloadError
from repro.spark.stageinfo import StageRuntimeProfile, profiles_to_workload
from repro.units import GB, KB, MB


class TestChannelBytes:
    def test_nonzero_channels_only(self):
        profile = StageRuntimeProfile(
            name="s", num_tasks=4, hdfs_read_bytes=1 * GB, shuffle_write_bytes=2 * GB
        )
        assert set(profile.channel_bytes()) == {"hdfs_read", "shuffle_write"}

    def test_empty(self):
        assert StageRuntimeProfile(name="s", num_tasks=1).channel_bytes() == {}


class TestToStageSpec:
    def test_basic_conversion(self):
        profile = StageRuntimeProfile(
            name="scan",
            num_tasks=8,
            hdfs_read_bytes=8 * 128 * MB,
            compute_seconds_per_task=2.0,
        )
        spec = profile.to_stage_spec()
        assert spec.name == "scan"
        assert spec.num_tasks == 8
        group = spec.groups[0]
        assert group.compute_seconds == 2.0
        assert group.read_channels[0].bytes_per_task == pytest.approx(128 * MB)

    def test_shuffle_read_request_size_uses_geometry(self):
        profile = StageRuntimeProfile(
            name="reduce",
            num_tasks=10,
            shuffle_read_bytes=100 * MB,
            num_mappers=10,
            num_reducers=10,
        )
        spec = profile.to_stage_spec()
        channel = spec.groups[0].read_channels[0]
        assert channel.request_size == pytest.approx(1 * MB)

    def test_request_size_override_via_extras(self):
        profile = StageRuntimeProfile(
            name="s",
            num_tasks=2,
            persist_read_bytes=4 * MB,
            extras={"persist_read_request_size": 512 * KB},
        )
        channel = profile.to_stage_spec().groups[0].read_channels[0]
        assert channel.request_size == pytest.approx(512 * KB)

    def test_default_request_capped_by_per_task(self):
        profile = StageRuntimeProfile(
            name="s", num_tasks=100, hdfs_write_bytes=10 * MB
        )
        channel = profile.to_stage_spec().groups[0].write_channels[0]
        assert channel.request_size <= 10 * MB / 100 + 1

    def test_throughputs_applied(self):
        profile = StageRuntimeProfile(name="s", num_tasks=2, hdfs_read_bytes=2 * MB)
        spec = profile.to_stage_spec(throughputs={"hdfs_read": 50 * MB})
        assert spec.groups[0].read_channels[0].per_core_throughput == 50 * MB

    def test_zero_tasks_rejected(self):
        profile = StageRuntimeProfile(name="s", num_tasks=0)
        with pytest.raises(WorkloadError):
            profile.to_stage_spec()


class TestProfilesToWorkload:
    def test_bundle(self):
        profiles = [
            StageRuntimeProfile(name="a", num_tasks=2, compute_seconds_per_task=1.0),
            StageRuntimeProfile(name="b", num_tasks=3, compute_seconds_per_task=1.0),
        ]
        workload = profiles_to_workload("mini", profiles)
        assert workload.name == "mini"
        assert [s.name for s in workload.stages] == ["a", "b"]

    def test_empty_rejected(self):
        with pytest.raises(WorkloadError):
            profiles_to_workload("none", [])
