"""The section registry and the built-in section declarations."""

from __future__ import annotations

import pytest

import repro.bench as bench
from repro.bench.registry import BenchmarkSection
from repro.errors import ConfigurationError

BUILTINS = ["engine", "cache", "search", "resilience", "parallel",
            "vectorized", "multitenant", "service"]


def test_builtin_sections_registered_in_order():
    assert bench.section_names() == BUILTINS


def test_snapshot_keys_match_legacy_layout():
    keys = {s.name: s.snapshot_key for s in bench.all_sections()}
    assert keys == {
        "engine": None,
        "cache": "core_sweep",
        "search": "optimizer_search",
        "resilience": "resilience",
        "parallel": "parallel",
        "vectorized": "vectorized",
        "multitenant": "multitenant",
        "service": "service",
    }


def test_slow_flags():
    slow = {s.name for s in bench.all_sections() if s.slow}
    assert slow == {"cache", "parallel"}


def test_resolve_default_is_everything():
    assert [s.name for s in bench.resolve_sections()] == BUILTINS


def test_resolve_skip_slow_drops_flagged():
    names = [s.name for s in bench.resolve_sections(skip_slow=True)]
    assert names == ["engine", "search", "resilience", "vectorized",
                     "multitenant", "service"]


def test_resolve_explicit_names_never_slow_filtered():
    sections = bench.resolve_sections(["cache"], skip_slow=True)
    assert [s.name for s in sections] == ["cache"]


def test_resolve_preserves_registry_order_and_dedups():
    sections = bench.resolve_sections(["vectorized", "engine", "engine"])
    assert [s.name for s in sections] == ["engine", "vectorized"]


def test_resolve_unknown_name_is_config_error():
    with pytest.raises(ConfigurationError, match="unknown benchmark"):
        bench.resolve_sections(["engine", "warp-drive"])


def test_duplicate_registration_rejected():
    with pytest.raises(ConfigurationError, match="already registered"):
        bench.register_section(BenchmarkSection(
            name="engine", title="imposter", snapshot_key=None,
            run=lambda rounds: {},
        ))


def test_every_builtin_declares_gates():
    for section in bench.all_sections():
        assert section.gates, f"{section.name} has no regression gates"


def test_compose_snapshot_legacy_shape():
    snapshot = bench.compose_snapshot({
        "engine": {"benchmark": "gatk4-md-stage", "wall_seconds_best": 0.1},
        "cache": {"cache_speedup": 30.0},
        "vectorized": {"python_cand_per_s": 2e5},
    })
    # Engine metrics merge at the top level; others nest under their key.
    assert snapshot["benchmark"] == "gatk4-md-stage"
    assert snapshot["core_sweep"] == {"cache_speedup": 30.0}
    assert snapshot["vectorized"] == {"python_cand_per_s": 2e5}
    assert "engine" not in snapshot


def test_compose_snapshot_partial_run_preserves_existing():
    existing = {
        "benchmark": "gatk4-md-stage",
        "wall_seconds_best": 0.1,
        "core_sweep": {"cache_speedup": 30.0},
        "vectorized": {"python_cand_per_s": 2e5},
    }
    snapshot = bench.compose_snapshot(
        {"engine": {"benchmark": "gatk4-md-stage", "wall_seconds_best": 0.2}},
        existing=existing,
    )
    assert snapshot["wall_seconds_best"] == 0.2
    assert snapshot["core_sweep"] == {"cache_speedup": 30.0}
    # The input mapping is not mutated.
    assert existing["wall_seconds_best"] == 0.1
