"""bench --report: sparklines, metric flattening, partitions, gaps."""

from repro.bench.report import (
    GAP_CHAR,
    MAX_COLUMNS,
    SPARK_CHARS,
    flatten_metrics,
    render_history_report,
    sparkline,
)


def record(sha, fp_key, sections):
    return {
        "git_sha": sha,
        "fingerprint_key": fp_key,
        "sections": sections,
    }


class TestFlattenMetrics:
    def test_numeric_leaves_under_dotted_paths(self):
        flat = flatten_metrics(
            {"qps": 100, "lat": {"p50_ms": 1.5, "p99_ms": 4.0}, "name": "x"}
        )
        assert flat == {"qps": 100.0, "lat.p50_ms": 1.5, "lat.p99_ms": 4.0}

    def test_bools_and_skip_suffixes_excluded(self):
        flat = flatten_metrics(
            {"ok": True, "wall_seconds_all": [1, 2], "wall_seconds": 2.0}
        )
        assert flat == {"wall_seconds": 2.0}
        # The suffix rule also applies when the list was summarized to a
        # number upstream.
        assert "wall_seconds_all" not in flatten_metrics(
            {"wall_seconds_all": 3.0}
        )


class TestSparkline:
    def test_min_and_max_map_to_extremes(self):
        line = sparkline([0.0, 10.0])
        assert line == SPARK_CHARS[0] + SPARK_CHARS[-1]

    def test_gaps_render_as_dots(self):
        line = sparkline([1.0, None, 2.0])
        assert line[1] == GAP_CHAR
        assert len(line) == 3

    def test_constant_series_is_flat_midline(self):
        line = sparkline([5.0, 5.0, 5.0])
        assert line == SPARK_CHARS[len(SPARK_CHARS) // 2] * 3

    def test_all_gaps(self):
        assert sparkline([None, None]) == GAP_CHAR * 2


class TestRenderReport:
    def test_empty_history_hint(self):
        text = render_history_report([])
        assert "0 record(s)" in text
        assert "no records yet" in text

    def test_partitions_by_fingerprint_key(self):
        records = [
            record("aaaaaaaa1", "cpu1-a", {"model": {"qps": 1.0}}),
            record("bbbbbbbb2", "cpu8-b", {"model": {"qps": 9.0}}),
        ]
        text = render_history_report(records)
        assert "fingerprint cpu1-a — 1 record(s)" in text
        assert "fingerprint cpu8-b — 1 record(s)" in text
        # SHAs are truncated to 7 characters.
        assert "aaaaaaa" in text and "aaaaaaaa1" not in text

    def test_missing_section_renders_as_gap(self):
        records = [
            record("a" * 7, "k", {"model": {"qps": 1.0}, "sim": {"wall": 2.0}}),
            record("b" * 7, "k", {"model": {"qps": 3.0}}),  # partial run
            record("c" * 7, "k", {"model": {"qps": 5.0}, "sim": {"wall": 4.0}}),
        ]
        text = render_history_report(records)
        sim_line = next(
            line for line in text.splitlines() if "sim.wall" in line
        )
        assert GAP_CHAR in sim_line
        assert "2 -> 4" in sim_line

    def test_first_to_last_annotation_and_path_header(self):
        records = [
            record("a" * 7, "k", {"model": {"qps": 10.0}}),
            record("b" * 7, "k", {"model": {"qps": 40.0}}),
        ]
        text = render_history_report(records, path="/tmp/h.jsonl")
        assert "in /tmp/h.jsonl" in text
        assert "model.qps" in text
        assert "10 -> 40" in text

    def test_only_newest_columns_kept(self):
        records = [
            record(f"sha{i:04d}", "k", {"model": {"qps": float(i)}})
            for i in range(MAX_COLUMNS + 5)
        ]
        text = render_history_report(records)
        line = next(row for row in text.splitlines() if "model.qps" in row)
        spark = line.split()[1]
        assert len(spark) == MAX_COLUMNS
        assert "sha0000" not in text  # oldest trimmed
