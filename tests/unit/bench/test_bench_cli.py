"""``python -m repro bench`` end to end, on fast fake sections.

The real sections are exercised by the benchmark suite itself; here a
fake registry (installed via ``monkeypatch.dict``) keeps the CLI tests
instant while covering the full surface: record append, snapshot
composition and merge, gate verdicts, ``--check`` exit codes, rotation.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

import repro.bench.registry as registry
from repro.bench.gates import MetricGate
from repro.bench.registry import BenchmarkSection
from repro.cli import main


@pytest.fixture
def fake_registry(monkeypatch):
    """Replace the registry with two tiny deterministic sections."""
    top = BenchmarkSection(
        name="engine", title="fake engine", snapshot_key=None,
        run=lambda rounds: {
            "benchmark": "fake", "rounds": rounds,
            "simulated_makespan_seconds": 258.76, "wall_seconds_best": 0.1,
        },
        gates=(
            MetricGate("simulated_makespan_seconds", "exact",
                       fingerprint_scoped=False),
            MetricGate("wall_seconds_best", "lower"),
        ),
    )
    nested = BenchmarkSection(
        name="cache", title="fake cache", snapshot_key="core_sweep",
        run=lambda rounds: {"cache_speedup": 30.0},
        guards=lambda metrics: (
            [] if metrics["cache_speedup"] >= 2.0 else ["too slow"]
        ),
        gates=(MetricGate("cache_speedup", "higher"),),
        slow=True,
    )
    monkeypatch.setattr(
        registry, "_REGISTRY", {"engine": top, "cache": nested}
    )
    return {"engine": top, "cache": nested}


def bench(tmp_path, *extra):
    return main([
        "bench",
        "--history", str(tmp_path / "h.jsonl"),
        "--output", str(tmp_path / "snap.json"),
        *extra,
    ])


def test_run_appends_exactly_one_record(fake_registry, tmp_path, capsys):
    assert bench(tmp_path) == 0
    assert bench(tmp_path) == 0
    lines = (tmp_path / "h.jsonl").read_text().splitlines()
    assert len(lines) == 2
    record = json.loads(lines[0])
    assert set(record["sections"]) == {"engine", "cache"}
    assert record["fingerprint_key"]
    assert record["format_version"] == 1


def test_snapshot_has_legacy_shape(fake_registry, tmp_path):
    bench(tmp_path)
    snapshot = json.loads((tmp_path / "snap.json").read_text())
    assert snapshot["benchmark"] == "fake"
    assert snapshot["simulated_makespan_seconds"] == 258.76
    assert snapshot["core_sweep"] == {"cache_speedup": 30.0}


def test_partial_run_merges_into_existing_snapshot(fake_registry, tmp_path):
    bench(tmp_path)
    assert bench(tmp_path, "--sections", "engine") == 0
    snapshot = json.loads((tmp_path / "snap.json").read_text())
    # The cache section was not rerun but survives from the first run.
    assert snapshot["core_sweep"] == {"cache_speedup": 30.0}


def test_skip_slow_drops_flagged_sections(fake_registry, tmp_path):
    assert bench(tmp_path, "--skip-slow") == 0
    record = json.loads((tmp_path / "h.jsonl").read_text())
    assert set(record["sections"]) == {"engine"}


def test_check_writes_nothing(fake_registry, tmp_path, capsys):
    assert bench(tmp_path, "--check") == 0
    assert not (tmp_path / "h.jsonl").exists()
    assert not (tmp_path / "snap.json").exists()
    assert "bench check OK" in capsys.readouterr().out


def test_check_fails_on_exact_divergence(fake_registry, tmp_path, capsys):
    bench(tmp_path)
    # Simulate a determinism break: the recorded makespan differs.  The
    # fixture owns the registry dict, so swapping an entry is test-local.
    registry._REGISTRY["engine"] = dataclasses.replace(
        fake_registry["engine"],
        run=lambda rounds: {
            "benchmark": "fake", "rounds": rounds,
            "simulated_makespan_seconds": 999.0, "wall_seconds_best": 0.1,
        },
    )
    assert bench(tmp_path, "--check") == 3
    out = capsys.readouterr()
    assert "deterministic metric changed" in out.out
    assert "BenchmarkRegressionError" in out.err
    # Gate-only mode appended nothing even though it failed.
    assert len((tmp_path / "h.jsonl").read_text().splitlines()) == 1


def test_check_fails_on_guard_floor(fake_registry, tmp_path, capsys):
    registry._REGISTRY["cache"] = dataclasses.replace(
        fake_registry["cache"], run=lambda rounds: {"cache_speedup": 1.1},
    )
    assert bench(tmp_path, "--check") == 3
    assert "[FAIL] cache.guard: too slow" in capsys.readouterr().out


def test_band_gate_fails_against_rolling_history(fake_registry, tmp_path,
                                                 capsys):
    for _ in range(3):
        assert bench(tmp_path) == 0
    registry._REGISTRY["engine"] = dataclasses.replace(
        fake_registry["engine"],
        run=lambda rounds: {
            "benchmark": "fake", "rounds": rounds,
            "simulated_makespan_seconds": 258.76, "wall_seconds_best": 41.0,
        },
    )
    assert bench(tmp_path, "--check") == 3
    assert "rolling median" in capsys.readouterr().out


def test_unknown_section_is_config_error(fake_registry, tmp_path):
    assert bench(tmp_path, "--sections", "warp-drive") == 2


def test_max_history_rotates(fake_registry, tmp_path):
    for _ in range(4):
        bench(tmp_path, "--max-history", "2")
    assert len((tmp_path / "h.jsonl").read_text().splitlines()) == 2


def test_json_output_carries_verdicts(fake_registry, tmp_path, capsys):
    assert bench(tmp_path, "--json") == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is True
    assert {v["section"] for v in payload["verdicts"]} == {"engine", "cache"}
    assert payload["sections"]["cache"] == {"cache_speedup": 30.0}


def test_list_prints_registry(fake_registry, capsys):
    assert main(["bench", "--list"]) == 0
    out = capsys.readouterr().out
    assert "fake engine" in out and "slow" in out


def test_report_renders_history_trajectories(fake_registry, tmp_path, capsys):
    assert bench(tmp_path) == 0
    assert bench(tmp_path) == 0
    capsys.readouterr()  # drop the two run reports
    assert bench(tmp_path, "--report") == 0
    out = capsys.readouterr().out
    assert "bench history: 2 record(s)" in out
    assert "fingerprint" in out
    assert "engine.simulated_makespan_seconds" in out
    assert "->" in out


def test_report_on_empty_history(fake_registry, tmp_path, capsys):
    assert bench(tmp_path, "--report") == 0
    out = capsys.readouterr().out
    assert "0 record(s)" in out
    assert "no records yet" in out


def test_report_runs_no_sections(fake_registry, tmp_path, capsys):
    # --report is a pure read: it must not append a record or write a
    # snapshot even though the normal path would.
    assert bench(tmp_path, "--report") == 0
    assert not (tmp_path / "h.jsonl").exists()
    assert not (tmp_path / "snap.json").exists()
