"""The regression detector: bands, exact gates, thin history, scoping."""

from __future__ import annotations

import pytest

from repro.bench.gates import (
    GatePolicy,
    MetricGate,
    Verdict,
    evaluate_gate,
    evaluate_section,
    metric_value,
)

POLICY = GatePolicy(window=5, min_history=3)


def record(value, fingerprint="cpu2-py3.11-numpy-numpy", section="engine",
           metric="wall"):
    return {
        "fingerprint_key": fingerprint,
        "sections": {section: {metric: value}},
    }


def judge(gate, fresh, history, fingerprint="cpu2-py3.11-numpy-numpy"):
    return evaluate_gate(
        gate, "engine", {"wall": fresh}, history, fingerprint, POLICY
    )


class TestLowerBand:
    GATE = MetricGate("wall", "lower", warn_ratio=2.0, fail_ratio=4.0)
    HISTORY = [record(1.0) for _ in range(5)]  # median 1.0

    def test_within_band_passes(self):
        assert judge(self.GATE, 1.5, self.HISTORY).status == "pass"

    def test_at_warn_boundary_passes(self):
        # Strictly-greater comparison: exactly 2x the median is not a warn.
        assert judge(self.GATE, 2.0, self.HISTORY).status == "pass"

    def test_past_warn_warns(self):
        assert judge(self.GATE, 2.01, self.HISTORY).status == "warn"

    def test_at_fail_boundary_warns(self):
        assert judge(self.GATE, 4.0, self.HISTORY).status == "warn"

    def test_past_fail_fails(self):
        verdict = judge(self.GATE, 4.01, self.HISTORY)
        assert verdict.status == "fail"
        assert verdict.reference == 1.0

    def test_faster_is_always_fine(self):
        assert judge(self.GATE, 0.01, self.HISTORY).status == "pass"


class TestHigherBand:
    GATE = MetricGate("wall", "higher", warn_ratio=2.0, fail_ratio=4.0)
    HISTORY = [record(100.0) for _ in range(5)]

    def test_within_band_passes(self):
        assert judge(self.GATE, 60.0, self.HISTORY).status == "pass"

    def test_past_warn_warns(self):
        assert judge(self.GATE, 49.0, self.HISTORY).status == "warn"

    def test_past_fail_fails(self):
        assert judge(self.GATE, 24.0, self.HISTORY).status == "fail"

    def test_better_is_always_fine(self):
        assert judge(self.GATE, 1e6, self.HISTORY).status == "pass"


class TestThinHistory:
    GATE = MetricGate("wall", "lower")

    def test_no_history_passes(self):
        verdict = judge(self.GATE, 100.0, [])
        assert verdict.status == "pass"
        assert "thin history" in verdict.detail

    def test_below_min_history_passes(self):
        history = [record(1.0), record(1.0)]
        verdict = judge(self.GATE, 100.0, history)
        assert verdict.status == "pass"
        assert "absolute floors apply" in verdict.detail

    def test_min_history_activates_gating(self):
        history = [record(1.0) for _ in range(3)]
        assert judge(self.GATE, 100.0, history).status == "fail"


class TestFingerprintScoping:
    GATE = MetricGate("wall", "lower")

    def test_other_hosts_records_ignored(self):
        history = [record(0.1, fingerprint="cpu32-py3.11-numpy-numpy")
                   for _ in range(5)]
        # 4 seconds would fail against the 32-core host's 0.1s median,
        # but those records are another partition: thin history here.
        verdict = judge(self.GATE, 4.0, history,
                        fingerprint="cpu1-py3.11-numpy-numpy")
        assert verdict.status == "pass"
        assert "thin history" in verdict.detail

    def test_matching_host_gates(self):
        history = [record(0.1, fingerprint="cpu1-py3.11-numpy-numpy")
                   for _ in range(5)]
        verdict = judge(self.GATE, 4.0, history,
                        fingerprint="cpu1-py3.11-numpy-numpy")
        assert verdict.status == "fail"

    def test_unscoped_gate_sees_everything(self):
        gate = MetricGate("wall", "lower", fingerprint_scoped=False)
        history = [record(0.1, fingerprint="cpu32-py3.11-numpy-numpy")
                   for _ in range(5)]
        verdict = judge(gate, 4.0, history,
                        fingerprint="cpu1-py3.11-numpy-numpy")
        assert verdict.status == "fail"


class TestExactGate:
    GATE = MetricGate("wall", "exact", fingerprint_scoped=False)

    def test_no_history_passes(self):
        assert judge(self.GATE, 258.76, []).status == "pass"

    def test_match_passes(self):
        assert judge(self.GATE, 258.76, [record(258.76)]).status == "pass"

    def test_compares_against_most_recent(self):
        history = [record(1.0), record(258.76)]
        assert judge(self.GATE, 258.76, history).status == "pass"

    def test_mismatch_fails(self):
        verdict = judge(self.GATE, 258.77, [record(258.76)])
        assert verdict.status == "fail"
        assert "deterministic metric changed" in verdict.detail

    def test_tolerance_absorbs_float_noise(self):
        value = 258.7646272067465
        assert judge(self.GATE, value + 1e-12, [record(value)]).status == "pass"

    def test_lists_compare_elementwise(self):
        history = [record([1.0, 2.0, 3.0])]
        assert judge(self.GATE, [1.0, 2.0, 3.0], history).status == "pass"
        assert judge(self.GATE, [1.0, 2.0, 3.1], history).status == "fail"
        assert judge(self.GATE, [1.0, 2.0], history).status == "fail"

    def test_strings_compare_exactly(self):
        history = [record("n1-standard-16")]
        assert judge(self.GATE, "n1-standard-16", history).status == "pass"
        assert judge(self.GATE, "n1-standard-8", history).status == "fail"


def test_absent_metric_skips():
    gate = MetricGate("nope", "lower")
    verdict = evaluate_gate(gate, "engine", {"wall": 1.0}, [], None, POLICY)
    assert verdict.status == "skip"


def test_metric_value_dotted_paths():
    metrics = {"search": {"best": {"cost": 3.75}}, "flat": 1}
    assert metric_value(metrics, "search.best.cost") == 3.75
    assert metric_value(metrics, "flat") == 1
    assert metric_value(metrics, "search.missing") is None
    assert metric_value(metrics, "flat.deeper") is None


def test_evaluate_section_one_verdict_per_gate():
    gates = (
        MetricGate("wall", "lower"),
        MetricGate("rate", "higher"),
        MetricGate("missing", "lower"),
    )
    verdicts = evaluate_section(
        "engine", gates, {"wall": 1.0, "rate": 10.0}, [], "cpu1-x", POLICY
    )
    assert [v.metric for v in verdicts] == ["wall", "rate", "missing"]
    assert [v.status for v in verdicts] == ["pass", "pass", "skip"]


def test_gate_validation():
    with pytest.raises(ValueError):
        MetricGate("wall", "sideways")
    with pytest.raises(ValueError):
        MetricGate("wall", "lower", warn_ratio=3.0, fail_ratio=2.0)
    with pytest.raises(ValueError):
        MetricGate("wall", "lower", warn_ratio=1.0)


def test_verdict_rendering():
    verdict = Verdict("engine", "wall", "fail", 4.0, 1.0, "too slow")
    assert verdict.describe() == "[FAIL] engine.wall: too slow"
    assert verdict.to_dict()["status"] == "fail"
