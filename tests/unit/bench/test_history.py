"""The append-only history store: append, load, rotate, corruption."""

from __future__ import annotations

import json

import pytest

from repro.bench.history import (
    BenchHistory,
    fingerprint_key,
    host_fingerprint,
    make_record,
    write_snapshot,
)


def test_append_one_line_per_record(tmp_path):
    history = BenchHistory(tmp_path / "h.jsonl")
    history.append({"a": 1})
    history.append({"b": 2})
    lines = (tmp_path / "h.jsonl").read_text().splitlines()
    assert len(lines) == 2
    assert json.loads(lines[0]) == {"a": 1}
    assert json.loads(lines[1]) == {"b": 2}


def test_load_missing_file_is_empty(tmp_path):
    assert BenchHistory(tmp_path / "nope.jsonl").load() == []


def test_load_roundtrip_preserves_order(tmp_path):
    history = BenchHistory(tmp_path / "h.jsonl")
    for index in range(5):
        history.append({"run": index})
    assert [r["run"] for r in history.load()] == [0, 1, 2, 3, 4]
    assert len(history) == 5


def test_corrupt_line_skipped_with_warning(tmp_path):
    path = tmp_path / "h.jsonl"
    history = BenchHistory(path)
    history.append({"run": 0})
    with open(path, "a") as handle:
        handle.write('{"run": 1, "truncated...\n')
    history.append({"run": 2})
    with pytest.warns(UserWarning, match="corrupt line 2"):
        records = history.load()
    assert [r["run"] for r in records] == [0, 2]


def test_non_dict_line_skipped_with_warning(tmp_path):
    path = tmp_path / "h.jsonl"
    path.write_text('{"run": 0}\n[1, 2, 3]\n')
    with pytest.warns(UserWarning, match="non-record line 2"):
        records = BenchHistory(path).load()
    assert records == [{"run": 0}]


def test_blank_lines_ignored(tmp_path):
    path = tmp_path / "h.jsonl"
    path.write_text('{"run": 0}\n\n\n{"run": 1}\n')
    assert len(BenchHistory(path).load()) == 2


def test_rotate_keeps_newest(tmp_path):
    history = BenchHistory(tmp_path / "h.jsonl")
    for index in range(7):
        history.append({"run": index})
    dropped = history.rotate(3)
    assert dropped == 4
    assert [r["run"] for r in history.load()] == [4, 5, 6]
    # No-op when already within budget.
    assert history.rotate(3) == 0


def test_rotate_rejects_nonpositive(tmp_path):
    with pytest.raises(ValueError):
        BenchHistory(tmp_path / "h.jsonl").rotate(0)


def test_fingerprint_key_shape():
    key = fingerprint_key({
        "cpus": 4, "python": "3.11.7", "numpy": "1.26.0",
        "arrays_backend": "numpy",
    })
    assert key == "cpu4-py3.11-numpy-numpy"
    key = fingerprint_key({
        "cpus": 1, "python": "3.12.1", "numpy": None,
        "arrays_backend": "python",
    })
    assert key == "cpu1-py3.12-purepy-python"


def test_host_fingerprint_fields():
    fingerprint = host_fingerprint()
    assert fingerprint["cpus"] >= 1
    assert fingerprint["python"].count(".") == 2
    assert fingerprint["arrays_backend"] in ("python", "numpy")
    assert "backend_env" in fingerprint


def test_make_record_carries_fingerprint_and_sections():
    record = make_record({"engine": {"wall": 1.0}}, rounds=2)
    assert record["sections"] == {"engine": {"wall": 1.0}}
    assert record["rounds"] == 2
    assert record["fingerprint_key"] == fingerprint_key(record["fingerprint"])
    assert record["format_version"] == 1
    assert record["timestamp"].endswith("+00:00")


def test_write_snapshot_atomic_and_clean(tmp_path):
    target = tmp_path / "snap.json"
    write_snapshot(target, {"a": 1})
    write_snapshot(target, {"b": 2})
    assert json.loads(target.read_text()) == {"b": 2}
    # No temp file left behind.
    assert list(tmp_path.iterdir()) == [target]
