"""Unit tests for the multi-job mix engine and its building blocks."""

import dataclasses

import pytest

from repro.cluster import HYBRID_CONFIGS, make_paper_cluster
from repro.faults.plan import FaultPlan, NodeFailureFault
from repro.invariants import check_mix_conservation
from repro.schedule.mix import (
    MIX_POLICIES,
    MixJob,
    canonical_jobs,
    measure_mix,
)
from repro.schedule.scheduler import SchedulingError
from repro.units import MB
from repro.workloads.base import (
    ChannelSpec,
    StageSpec,
    TaskGroupSpec,
    WorkloadError,
    WorkloadSpec,
    scale_workload_volume,
)


def _spec(name, count=4, compute=1.0, read_mb=8.0):
    """One-stage compute+read workload, small enough to simulate fast."""
    return WorkloadSpec(
        name=name,
        stages=(
            StageSpec(
                name="s0",
                groups=(
                    TaskGroupSpec(
                        name="g",
                        count=count,
                        read_channels=(
                            ChannelSpec(
                                kind="hdfs_read",
                                bytes_per_task=read_mb * MB,
                                request_size=1 * MB,
                            ),
                        ),
                        compute_seconds=compute,
                    ),
                ),
            ),
        ),
    )


def _cluster(nodes=2):
    return make_paper_cluster(nodes, HYBRID_CONFIGS[0])


class TestMixJob:
    def test_defaults(self):
        job = MixJob(spec=_spec("a"))
        assert job.arrival == 0.0
        assert job.volume_scale == 1.0
        assert job.display_name == "a"

    def test_name_override(self):
        assert MixJob(spec=_spec("a"), name="alias").display_name == "alias"

    @pytest.mark.parametrize("arrival", [-1.0, float("nan"), float("inf")])
    def test_bad_arrival_rejected(self, arrival):
        with pytest.raises(SchedulingError, match="arrival"):
            MixJob(spec=_spec("a"), arrival=arrival)

    @pytest.mark.parametrize("scale", [0.0, -2.0, float("nan"), float("inf")])
    def test_bad_volume_scale_rejected(self, scale):
        with pytest.raises(SchedulingError, match="volume_scale"):
            MixJob(spec=_spec("a"), volume_scale=scale)


class TestCanonicalJobs:
    def test_orders_by_arrival_then_name(self):
        jobs = [
            MixJob(spec=_spec("z"), arrival=0.0),
            MixJob(spec=_spec("a"), arrival=5.0),
            MixJob(spec=_spec("b"), arrival=0.0),
        ]
        assert [name for name, _ in canonical_jobs(jobs)] == ["b", "z", "a"]

    def test_input_position_breaks_exact_ties(self):
        first = MixJob(spec=_spec("same"), volume_scale=1.0)
        second = MixJob(spec=_spec("same"), volume_scale=2.0)
        named = canonical_jobs([second, first])
        # Same (arrival, name): submitted order decides, then suffixes.
        assert [name for name, _ in named] == ["same", "same#2"]
        assert named[0][1] is second

    def test_duplicate_names_suffixed_in_canonical_order(self):
        jobs = [
            MixJob(spec=_spec("dup"), arrival=9.0),
            MixJob(spec=_spec("dup"), arrival=0.0),
            MixJob(spec=_spec("dup"), arrival=4.0),
        ]
        named = canonical_jobs(jobs)
        assert [name for name, _ in named] == ["dup", "dup#2", "dup#3"]
        assert [job.arrival for _, job in named] == [0.0, 4.0, 9.0]

    def test_empty_list_is_empty(self):
        assert canonical_jobs([]) == []


class TestMeasureMix:
    def test_unknown_policy_rejected(self):
        with pytest.raises(SchedulingError, match="unknown mix policy"):
            measure_mix(_cluster(), 4, [MixJob(spec=_spec("a"))], policy="srpt")

    def test_empty_mix_rejected(self):
        with pytest.raises(SchedulingError, match="at least one job"):
            measure_mix(_cluster(), 4, [])

    def test_timeline_names_follow_canonical_order(self):
        jobs = [
            MixJob(spec=_spec("late"), arrival=50.0),
            MixJob(spec=_spec("early"), arrival=0.0),
        ]
        mix = measure_mix(_cluster(), 4, jobs)
        assert [t.name for t in mix.jobs] == ["early", "late"]
        assert mix.jobs[0].arrival == 0.0

    def test_makespan_covers_every_finish(self):
        jobs = [
            MixJob(spec=_spec("a")),
            MixJob(spec=_spec("b"), arrival=2.0),
        ]
        mix = measure_mix(_cluster(), 4, jobs)
        assert mix.makespan == max(t.finish for t in mix.jobs)
        for timeline in mix.jobs:
            assert timeline.first_launch >= timeline.arrival
            assert timeline.finish >= timeline.first_launch

    def test_fifo_blocks_fair_shares(self):
        # One node, two cores: a big job saturates the cluster when a
        # small one arrives.  FIFO keeps draining the big job's queue;
        # fair hands the next free slot to the job with fewer running
        # tasks — so the small job starts strictly earlier under fair.
        jobs = [
            MixJob(spec=_spec("big", count=12, compute=2.0)),
            MixJob(spec=_spec("small", count=2, compute=0.5), arrival=1.0),
        ]
        fifo = measure_mix(_cluster(nodes=1), 2, jobs, policy="fifo")
        fair = measure_mix(_cluster(nodes=1), 2, jobs, policy="fair")
        fifo_small = next(t for t in fifo.jobs if t.name == "small")
        fair_small = next(t for t in fair.jobs if t.name == "small")
        assert fair_small.waiting < fifo_small.waiting
        assert fair_small.turnaround < fifo_small.turnaround

    def test_both_policies_conserve_bytes(self):
        jobs = [
            MixJob(spec=_spec("a"), volume_scale=2.0),
            MixJob(spec=_spec("b"), arrival=1.0),
        ]
        for policy in MIX_POLICIES:
            mix = measure_mix(_cluster(), 4, jobs, policy=policy)
            violations = check_mix_conservation(jobs, mix)
            assert not violations, "\n".join(map(str, violations))

    def test_node_failure_requeues_and_slows_the_mix(self):
        # Killing a node mid-mix requeues every job's in-flight tasks on
        # the survivors: the mix still completes, moves all its bytes,
        # and cannot get faster.
        jobs = [
            MixJob(spec=_spec("a", count=8)),
            MixJob(spec=_spec("b", count=8), arrival=0.5),
        ]
        clean = measure_mix(_cluster(), 2, jobs)
        plan = FaultPlan(
            name="kill", faults=(NodeFailureFault(node=1, at_seconds=1.0),)
        )
        faulted = measure_mix(_cluster(), 2, jobs, faults=plan)
        assert faulted.makespan >= clean.makespan
        violations = check_mix_conservation(jobs, faulted)
        assert not violations, "\n".join(map(str, violations))

    def test_run_index_changes_jitter(self):
        spec = dataclasses.replace(
            _spec("jittery"),
            stages=(
                dataclasses.replace(_spec("jittery").stages[0], task_jitter=0.2),
            ),
        )
        jobs = [MixJob(spec=spec), MixJob(spec=_spec("other"), arrival=0.5)]
        base = measure_mix(_cluster(), 2, jobs, run_index=0)
        repeat = measure_mix(_cluster(), 2, jobs, run_index=0)
        other = measure_mix(_cluster(), 2, jobs, run_index=1)
        assert base == repeat  # deterministic per run_index
        assert base.makespan != other.makespan


class TestVolumeScaling:
    def test_factor_one_is_identity(self):
        spec = _spec("a")
        assert scale_workload_volume(spec, 1.0) is spec

    def test_factor_scales_bytes_and_compute(self):
        spec = _spec("a", compute=1.5, read_mb=8.0)
        doubled = scale_workload_volume(spec, 2.0)
        group = doubled.stages[0].groups[0]
        assert group.read_channels[0].bytes_per_task == 16.0 * MB
        assert group.compute_seconds == 3.0
        # Request size is a property of the code path, not the volume.
        assert group.read_channels[0].request_size == 1 * MB

    @pytest.mark.parametrize("factor", [0.0, -1.0, float("nan"), float("inf")])
    def test_bad_factor_rejected(self, factor):
        with pytest.raises(WorkloadError):
            scale_workload_volume(_spec("a"), factor)
