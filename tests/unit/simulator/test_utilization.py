"""Unit tests for the engine's utilization accounting."""

import pytest

from repro.cluster import HYBRID_CONFIGS, make_paper_cluster
from repro.simulator.engine import SimulationEngine
from repro.simulator.task import ComputePhase, IoPhase, SimTask
from repro.units import KB, MB


def compute_tasks(count, seconds):
    return [SimTask(phases=(ComputePhase(seconds),)) for _ in range(count)]


def read_tasks(count, bytes_, cap):
    return [
        SimTask(
            phases=(
                IoPhase(role="local", total_bytes=bytes_, request_size=30 * KB,
                        is_write=False, per_stream_cap=cap),
            )
        )
        for _ in range(count)
    ]


class TestCoreUtilization:
    def test_fully_busy_cores(self):
        cluster = make_paper_cluster(1, HYBRID_CONFIGS[0])
        engine = SimulationEngine(cluster, cores_per_node=4)
        makespan = engine.run(compute_tasks(8, 2.0))
        assert engine.core_utilization(makespan) == pytest.approx(1.0)

    def test_partially_busy_cores(self):
        cluster = make_paper_cluster(1, HYBRID_CONFIGS[0])
        engine = SimulationEngine(cluster, cores_per_node=4)
        # 2 tasks on 4 cores: half the slots idle.
        makespan = engine.run(compute_tasks(2, 2.0))
        assert engine.core_utilization(makespan) == pytest.approx(0.5)

    def test_zero_makespan(self):
        cluster = make_paper_cluster(1, HYBRID_CONFIGS[0])
        engine = SimulationEngine(cluster, cores_per_node=1)
        assert engine.core_utilization(0.0) == 0.0


class TestDeviceUtilization:
    def test_io_bound_device_saturated(self):
        cluster = make_paper_cluster(1, HYBRID_CONFIGS[0])
        engine = SimulationEngine(cluster, cores_per_node=8)
        tasks = read_tasks(8, 480 * MB, cap=None)
        makespan = engine.run(tasks)
        name = cluster.slaves[0].local_device.name
        assert engine.device_utilization(name, False, makespan) == (
            pytest.approx(1.0)
        )
        # Nothing wrote; nothing touched the HDFS device.
        assert engine.device_utilization(name, True, makespan) == 0.0
        hdfs_name = cluster.slaves[0].hdfs_device.name
        assert engine.device_utilization(hdfs_name, False, makespan) == 0.0

    def test_compute_only_leaves_devices_idle(self):
        cluster = make_paper_cluster(1, HYBRID_CONFIGS[0])
        engine = SimulationEngine(cluster, cores_per_node=2)
        makespan = engine.run(compute_tasks(4, 1.0))
        name = cluster.slaves[0].local_device.name
        assert engine.device_utilization(name, False, makespan) == 0.0

    def test_interleaved_read_compute_splits_time(self):
        cluster = make_paper_cluster(1, HYBRID_CONFIGS[0])
        engine = SimulationEngine(cluster, cores_per_node=1)
        # One task: 1 s of reading (60 MB at 60 MB/s cap), then 3 s compute.
        task = SimTask(
            phases=(
                IoPhase(role="local", total_bytes=60 * MB,
                        request_size=30 * KB, is_write=False,
                        per_stream_cap=60 * MB),
                ComputePhase(3.0),
            )
        )
        makespan = engine.run([task])
        name = cluster.slaves[0].local_device.name
        assert makespan == pytest.approx(4.0)
        assert engine.device_utilization(name, False, makespan) == (
            pytest.approx(0.25)
        )
        assert engine.core_utilization(makespan) == pytest.approx(1.0)
