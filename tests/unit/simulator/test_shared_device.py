"""Unit tests for nodes whose HDFS and Spark-local share one physical disk.

The paper's Table III always provisions two separate disks, but single-disk
nodes are common in practice; the engine must route both roles to ONE
device queue so they contend — not to two independent copies.
"""

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.node import Node
from repro.simulator.engine import SimulationEngine
from repro.simulator.task import IoPhase, SimTask
from repro.storage.device import make_ssd
from repro.units import GB, KB, MB


def _shared_cluster():
    disk = make_ssd("the-only-disk", capacity_bytes=1000 * GB)
    node = Node(name="n0", num_cores=8, ram_bytes=64 * GB,
                hdfs_device=disk, local_device=disk)
    return Cluster(slaves=[node]), disk


def read_task(role, total, cap=None):
    return SimTask(
        phases=(
            IoPhase(role=role, total_bytes=total, request_size=30 * KB,
                    is_write=False, per_stream_cap=cap),
        )
    )


class TestSharedDevice:
    def test_node_reports_sharing(self):
        cluster, disk = _shared_cluster()
        assert cluster.slaves[0].shares_device

    def test_roles_contend_on_one_queue(self):
        cluster, disk = _shared_cluster()
        engine = SimulationEngine(cluster, cores_per_node=2)
        # Two uncapped readers, one per role: if the engine wrongly gave
        # each role its own device, both would finish in 1 s; sharing the
        # 480 MB/s disk they take 2 s.
        tasks = [
            read_task("hdfs", 480 * MB),
            read_task("local", 480 * MB),
        ]
        makespan = engine.run(tasks)
        assert makespan == pytest.approx(2.0, rel=0.01)

    def test_separate_devices_do_not_contend(self):
        hdfs_disk = make_ssd("hdfs-disk", capacity_bytes=1000 * GB)
        local_disk = make_ssd("local-disk", capacity_bytes=1000 * GB)
        node = Node(name="n0", num_cores=8, ram_bytes=64 * GB,
                    hdfs_device=hdfs_disk, local_device=local_disk)
        engine = SimulationEngine(Cluster(slaves=[node]), cores_per_node=2)
        tasks = [
            read_task("hdfs", 480 * MB),
            read_task("local", 480 * MB),
        ]
        assert engine.run(tasks) == pytest.approx(1.0, rel=0.01)

    def test_utilization_counted_once(self):
        cluster, disk = _shared_cluster()
        engine = SimulationEngine(cluster, cores_per_node=2)
        makespan = engine.run(
            [read_task("hdfs", 240 * MB), read_task("local", 240 * MB)]
        )
        assert engine.device_utilization(disk.name, False, makespan) == (
            pytest.approx(1.0)
        )
