"""Unit tests for the discrete-event engine's mechanics."""

import pytest

from repro.cluster import HYBRID_CONFIGS, make_paper_cluster
from repro.errors import SimulationError
from repro.simulator.engine import SimulationEngine
from repro.simulator.task import ComputePhase, IoPhase, SimTask
from repro.units import KB, MB


def compute_task(seconds=1.0):
    return SimTask(phases=(ComputePhase(seconds),))


def read_task(total=60 * MB, rs=30 * KB, role="local", cap=60 * MB):
    return SimTask(
        phases=(
            IoPhase(role=role, total_bytes=total, request_size=rs,
                    is_write=False, per_stream_cap=cap),
        )
    )


@pytest.fixture()
def one_node_cluster():
    return make_paper_cluster(1, HYBRID_CONFIGS[0])


class TestBasicExecution:
    def test_empty_task_list(self, one_node_cluster):
        engine = SimulationEngine(one_node_cluster, cores_per_node=4)
        assert engine.run([]) == 0.0

    def test_single_compute_task(self, one_node_cluster):
        engine = SimulationEngine(one_node_cluster, cores_per_node=1)
        task = compute_task(3.5)
        assert engine.run([task]) == pytest.approx(3.5)
        assert task.duration == pytest.approx(3.5)

    def test_core_limit_serializes(self, one_node_cluster):
        engine = SimulationEngine(one_node_cluster, cores_per_node=2)
        tasks = [compute_task(1.0) for _ in range(6)]
        assert engine.run(tasks) == pytest.approx(3.0)

    def test_parallel_within_core_limit(self, one_node_cluster):
        engine = SimulationEngine(one_node_cluster, cores_per_node=8)
        tasks = [compute_task(1.0) for _ in range(6)]
        assert engine.run(tasks) == pytest.approx(1.0)

    def test_zero_length_task_finishes_instantly(self, one_node_cluster):
        engine = SimulationEngine(one_node_cluster, cores_per_node=1)
        tasks = [SimTask(phases=(ComputePhase(0.0),)) for _ in range(3)]
        assert engine.run(tasks) == 0.0

    def test_multi_node_split(self):
        cluster = make_paper_cluster(2, HYBRID_CONFIGS[0])
        engine = SimulationEngine(cluster, cores_per_node=1)
        tasks = [compute_task(1.0) for _ in range(4)]
        # Two nodes, one core each: two tasks per node.
        assert engine.run(tasks) == pytest.approx(2.0)


class TestIoBehaviour:
    def test_single_stream_at_cap(self, one_node_cluster):
        engine = SimulationEngine(one_node_cluster, cores_per_node=1)
        task = read_task(total=60 * MB, cap=60 * MB)
        # SSD @30 KB = 480 MB/s >> cap, so the cap binds: 1 second.
        assert engine.run([task]) == pytest.approx(1.0)

    def test_contention_beyond_break_point(self, one_node_cluster):
        engine = SimulationEngine(one_node_cluster, cores_per_node=16)
        tasks = [read_task(total=60 * MB, cap=60 * MB) for _ in range(16)]
        # b = 480/60 = 8; 16 streams share 480 MB/s -> 30 MB/s each -> 2 s.
        assert engine.run(tasks) == pytest.approx(2.0)

    def test_no_contention_below_break_point(self, one_node_cluster):
        engine = SimulationEngine(one_node_cluster, cores_per_node=4)
        tasks = [read_task(total=60 * MB, cap=60 * MB) for _ in range(4)]
        assert engine.run(tasks) == pytest.approx(1.0)

    def test_hdfs_and_local_devices_independent(self, one_node_cluster):
        engine = SimulationEngine(one_node_cluster, cores_per_node=2)
        tasks = [
            read_task(role="hdfs", total=480 * MB, rs=128 * MB, cap=None),
            read_task(role="local", total=480 * MB, rs=30 * KB, cap=None),
        ]
        # Each stream owns its device; both finish around 1 s (hdfs is a
        # touch faster at 525 MB/s); no cross-device contention.
        assert engine.run(tasks) == pytest.approx(1.0, rel=0.05)

    def test_read_compute_write_sequence(self, one_node_cluster):
        engine = SimulationEngine(one_node_cluster, cores_per_node=1)
        task = SimTask(
            phases=(
                IoPhase(role="hdfs", total_bytes=128 * MB, request_size=128 * MB,
                        is_write=False, per_stream_cap=32 * MB),
                ComputePhase(2.0),
                IoPhase(role="local", total_bytes=100 * MB, request_size=100 * MB,
                        is_write=True, per_stream_cap=50 * MB),
            )
        )
        assert engine.run([task]) == pytest.approx(4.0 + 2.0 + 2.0)

    def test_iostat_recording(self, one_node_cluster):
        from repro.storage.iostat import IostatCollector

        iostat = IostatCollector()
        engine = SimulationEngine(one_node_cluster, cores_per_node=1, iostat=iostat)
        engine.run([read_task(total=60 * MB, rs=30 * KB)])
        device_name = one_node_cluster.slaves[0].local_device.name
        sample = iostat.sample(device_name, is_write=False)
        assert sample.total_bytes == pytest.approx(60 * MB)
        assert sample.avg_request_size == pytest.approx(30 * KB)


class TestValidation:
    def test_invalid_cores(self, one_node_cluster):
        with pytest.raises(SimulationError):
            SimulationEngine(one_node_cluster, cores_per_node=0)

    def test_cores_beyond_node(self, one_node_cluster):
        with pytest.raises(SimulationError):
            SimulationEngine(one_node_cluster, cores_per_node=37)

    def test_max_events_guard(self, one_node_cluster):
        engine = SimulationEngine(one_node_cluster, cores_per_node=1, max_events=2)
        tasks = [compute_task(1.0) for _ in range(5)]
        with pytest.raises(SimulationError):
            engine.run(tasks)


class TestFig6Phases:
    """The three execution regimes of Fig. 6, reproduced mechanically.

    Fig. 6's illustration: T = 60 MB/s, lambda = 4, BW = 120 MB/s, so
    b = 2 and B = 8.  Tasks read 60 MB then compute 3 s (t_avg = 4 s).
    """

    def _tasks(self, count):
        # Compute times carry the same mean-preserving jitter the workload
        # layer applies: identical tasks march in lockstep waves, which is
        # not how real (or pipelined, Fig. 6) execution behaves.
        golden = 0.618033988749895
        tasks = []
        for index in range(count):
            scale = 1.0 + 0.10 * (2.0 * ((index * golden) % 1.0) - 1.0)
            tasks.append(
                SimTask(
                    phases=(
                        IoPhase(role="local", total_bytes=60 * MB,
                                request_size=4 * KB, is_write=False,
                                per_stream_cap=60 * MB),
                        ComputePhase(3.0 * scale),
                    )
                )
            )
        return tasks

    @pytest.fixture()
    def narrow_cluster(self):
        # A device whose 4 KB read bandwidth is exactly 120 MB/s.
        from repro.cluster.cluster import Cluster
        from repro.cluster.node import Node
        from repro.core.bandwidth import EffectiveBandwidthTable
        from repro.storage.device import StorageDevice
        from repro.units import GB, TB

        table = EffectiveBandwidthTable({4 * KB: 120 * MB})
        def device(name):
            return StorageDevice(name=name, kind="ssd", capacity_bytes=1 * TB,
                                 read_table=table, write_table=table)
        node = Node(name="n0", num_cores=36, ram_bytes=128 * GB,
                    hdfs_device=device("h"), local_device=device("l"))
        return Cluster(slaves=[node])

    def test_phase1_no_contention(self, narrow_cluster):
        # P = 2 = b: M/(N*P) * t_avg = 8/2 * 4 = 16 s (jitter-averaged).
        engine = SimulationEngine(narrow_cluster, cores_per_node=2)
        assert engine.run(self._tasks(8)) == pytest.approx(16.0, rel=0.05)

    def test_phase2_contention_hidden(self, narrow_cluster):
        # P = 4 (b < P <= B): ~ M/(N*P) * t_avg + t_lat.
        engine = SimulationEngine(narrow_cluster, cores_per_node=4)
        makespan = engine.run(self._tasks(32))
        ideal = 32 / 4 * 4.0
        assert ideal <= makespan <= ideal * 1.2

    def test_phase3_io_bound(self, narrow_cluster):
        # P = 16 > B = 8: runtime pinned near D/BW (+ pipeline fill, which
        # Section IV-B's phase-3 formula writes as "+ t_avg").
        engine16 = SimulationEngine(narrow_cluster, cores_per_node=16)
        makespan16 = engine16.run(self._tasks(32))
        floor = 32 * 60 * MB / (120 * MB)
        t_avg = 4.0
        assert floor <= makespan16 <= floor + 2 * t_avg
        engine32 = SimulationEngine(narrow_cluster, cores_per_node=32)
        makespan32 = engine32.run(self._tasks(32))
        # More cores do not help once I/O-bound.
        assert makespan32 == pytest.approx(makespan16, rel=0.15)
