"""Determinism, submission-order invariance, the stall guard, and the
finite-network mode of the simulation engine."""

import random

import pytest

from repro.cluster import HYBRID_CONFIGS, Cluster, make_paper_cluster
from repro.cluster.network import NetworkModel, TEN_GBPS
from repro.errors import SimulationError
from repro.simulator.engine import SimulationEngine
from repro.simulator.task import ComputePhase, IoPhase, SimTask
from repro.units import GB, KB, MB
from repro.workloads.runner import measure_stage

ONE_GBPS = TEN_GBPS / 10.0


def _md_tasks(spec, cores):
    return spec.build_tasks(cores_per_node=cores, jitter_offset=0.0)


class TestDeterminism:
    def test_same_stage_spec_twice_is_identical(self, gatk4_workload):
        """Two independent builds + runs of the same StageSpec agree on the
        makespan bit for bit — the engine has no hidden entropy."""
        spec = gatk4_workload.stages[0]
        makespans = []
        for _ in range(2):
            cluster = make_paper_cluster(3, HYBRID_CONFIGS[0])
            engine = SimulationEngine(cluster, cores_per_node=4)
            makespans.append(engine.run(_md_tasks(spec, 4)))
        assert makespans[0] == makespans[1]

    def test_submission_order_invariance(self, gatk4_workload):
        """Shuffling the task list changes nothing: the engine canonicalizes
        submission order by task id before assigning tasks to nodes."""
        spec = gatk4_workload.stages[0]
        cluster = make_paper_cluster(3, HYBRID_CONFIGS[0])
        baseline = SimulationEngine(cluster, cores_per_node=4).run(
            _md_tasks(spec, 4)
        )
        for seed in (1, 2):
            shuffled = _md_tasks(spec, 4)
            random.Random(seed).shuffle(shuffled)
            cluster = make_paper_cluster(3, HYBRID_CONFIGS[0])
            engine = SimulationEngine(cluster, cores_per_node=4)
            assert engine.run(shuffled) == baseline

    def test_repeated_runs_of_measure_stage_identical(self, gatk4_workload):
        spec = gatk4_workload.stages[0]
        results = {
            measure_stage(
                make_paper_cluster(3, HYBRID_CONFIGS[0]), 4, spec
            ).makespan
            for _ in range(2)
        }
        assert len(results) == 1


class TestStallGuard:
    def _dead_cluster(self):
        cluster = make_paper_cluster(1, HYBRID_CONFIGS[0])
        node = cluster.slaves[0]
        node.local_device.bandwidth = lambda request_size, is_write: 0.0
        return cluster

    def test_consecutive_stall_raises_naming_device_and_request(self):
        """A stream allocated rate 0 twice in a row is reported with the
        device and request size instead of hanging until max_events."""
        cluster = self._dead_cluster()
        io = IoPhase(
            role="local", total_bytes=10 * MB, request_size=30 * KB,
            is_write=False,
        )
        stuck = SimTask(phases=(io,))
        # A compute task whose finish forces a second look at the dead
        # device (its own follow-up I/O joins the stalled queue).
        prodder = SimTask(phases=(ComputePhase(1.0), io))
        engine = SimulationEngine(cluster, cores_per_node=2)
        with pytest.raises(SimulationError, match="consecutive") as err:
            engine.run([stuck, prodder])
        assert "local-ssd" in str(err.value)
        assert "30720" in str(err.value)  # the 30 KB request size

    def test_all_streams_stalled_raises(self):
        cluster = self._dead_cluster()
        io = IoPhase(
            role="local", total_bytes=10 * MB, request_size=30 * KB,
            is_write=False,
        )
        engine = SimulationEngine(cluster, cores_per_node=1)
        with pytest.raises(SimulationError, match="stalled at rate 0") as err:
            engine.run([SimTask(phases=(io,))])
        assert "local-ssd" in str(err.value)


class TestNetworkMode:
    def test_default_ignores_via_network(self, gatk4_workload):
        """No NetworkModel passed -> the wire is infinite and shuffle-read
        phases run exactly as plain disk reads (the paper's default).  An
        absurdly fat configured pipe lands within a whisker of that: the
        only residual is the local/remote stream split changing per-stream
        fair shares under disk contention, not the wire itself."""
        spec = gatk4_workload.stages[2]  # SF: dominated by shuffle read
        plain = measure_stage(
            make_paper_cluster(10, HYBRID_CONFIGS[0]), 24, spec
        ).makespan
        fat_pipe = measure_stage(
            make_paper_cluster(10, HYBRID_CONFIGS[0]), 24, spec,
            network=NetworkModel(link_bandwidth=1e15),
        ).makespan
        assert fat_pipe == pytest.approx(plain, rel=5e-3)

    def test_one_gbps_makes_sf_network_bound(self, gatk4_workload, gatk4_predictor):
        """At 1 Gb/s the SF stage hits the wire: the simulated makespan
        sits on the network floor and agrees with the Equation-1 network
        extension within 10%."""
        spec = gatk4_workload.stages[2]
        cluster = make_paper_cluster(10, HYBRID_CONFIGS[0])
        slow = measure_stage(
            cluster, 24, spec, network=NetworkModel.from_gbps(1.0)
        ).makespan
        fast = measure_stage(cluster, 24, spec).makespan
        # Network floor: remote fraction 0.9 of 334 GB over 10 x 125 MB/s.
        floor = 0.9 * 334 * GB / (10 * ONE_GBPS)
        assert slow >= floor
        assert slow > 1.2 * fast
        model = gatk4_predictor.model_for_cluster(
            cluster, network_bandwidth=ONE_GBPS
        )
        predicted = model.predict(10, 24).stage("SF")
        assert predicted.bottleneck == "read"
        assert slow == pytest.approx(predicted.t_stage, rel=0.10)

    def test_one_gbps_leaves_md_alone(self, gatk4_workload):
        """MD moves no shuffle-read bytes; the NIC changes nothing."""
        spec = gatk4_workload.stages[0]
        cluster = make_paper_cluster(10, HYBRID_CONFIGS[0])
        plain = measure_stage(cluster, 24, spec).makespan
        slow = measure_stage(
            cluster, 24, spec, network=NetworkModel.from_gbps(1.0)
        ).makespan
        assert slow == pytest.approx(plain)

    def test_single_node_has_no_remote_traffic(self, gatk4_workload):
        """With one slave everything is local: remote fraction 0, so even a
        tiny NIC changes nothing."""
        spec = gatk4_workload.stages[2]
        plain = measure_stage(
            make_paper_cluster(1, HYBRID_CONFIGS[0]), 8, spec
        ).makespan
        slow = measure_stage(
            make_paper_cluster(1, HYBRID_CONFIGS[0]), 8, spec,
            network=NetworkModel.from_gbps(0.1),
        ).makespan
        assert slow == pytest.approx(plain)


class TestNodeHelpers:
    def test_engine_registers_nic_per_node_only_with_network(self):
        cluster = make_paper_cluster(2, HYBRID_CONFIGS[0])
        plain = SimulationEngine(cluster, cores_per_node=2)
        assert ("nic", "slave-0") not in plain.registry
        wired = SimulationEngine(
            cluster, cores_per_node=2, network=NetworkModel.from_gbps(10)
        )
        assert ("nic", "slave-0") in wired.registry
        assert ("nic", "slave-1") in wired.registry


def _two_member_array_cluster(per_member):
    from repro.cluster.node import Node
    from repro.storage.array import make_disk_array
    from repro.storage.device import make_ssd

    array = make_disk_array(
        "local-array",
        [make_ssd(name="m0"), make_ssd(name="m1")],
        per_member=per_member,
    )
    node = Node(
        name="slave-0",
        num_cores=8,
        ram_bytes=128 * GB,
        hdfs_device=make_ssd(name="hdfs"),
        local_device=array,
    )
    return Cluster(slaves=[node])


class TestPerMemberArrays:
    def _one_reader(self, cluster):
        io = IoPhase(
            role="local", total_bytes=480 * MB, request_size=1 * MB,
            is_write=False,
        )
        engine = SimulationEngine(cluster, cores_per_node=2)
        return engine.run([SimTask(phases=(io,))])

    def test_summed_array_gives_single_stream_full_aggregate(self):
        """Default mode: the array is one device with the summed curve, so
        one stream alone gets both members' bandwidth (RAID-0 view)."""
        cluster = _two_member_array_cluster(per_member=False)
        single = cluster.slaves[0].local_device.members[0]
        expected = 480 * MB / (2 * single.bandwidth(1 * MB, False))
        assert self._one_reader(cluster) == pytest.approx(expected, rel=1e-6)

    def test_per_member_array_limits_single_stream_to_one_member(self):
        """Per-member mode: a lone stream is striped onto one member and
        sees only that member's bandwidth (JBOD view)."""
        cluster = _two_member_array_cluster(per_member=True)
        single = cluster.slaves[0].local_device.members[0]
        expected = 480 * MB / single.bandwidth(1 * MB, False)
        assert self._one_reader(cluster) == pytest.approx(expected, rel=1e-6)

    def test_per_member_array_scales_with_concurrency(self):
        """Two concurrent streams land on different members, so aggregate
        throughput matches the summed mode."""
        cluster = _two_member_array_cluster(per_member=True)
        io = IoPhase(
            role="local", total_bytes=480 * MB, request_size=1 * MB,
            is_write=False,
        )
        tasks = [SimTask(phases=(io,)) for _ in range(2)]
        engine = SimulationEngine(cluster, cores_per_node=2)
        makespan = engine.run(tasks)
        summed = _two_member_array_cluster(per_member=False)
        engine2 = SimulationEngine(summed, cores_per_node=2)
        reference = engine2.run([SimTask(phases=(io,)) for _ in range(2)])
        assert makespan == pytest.approx(reference, rel=1e-6)
