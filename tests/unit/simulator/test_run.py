"""Unit tests for the stage/application measurement drivers."""

import pytest

from repro.errors import SimulationError
from repro.simulator.run import run_application, run_stage
from repro.simulator.task import ComputePhase, IoPhase, SimTask
from repro.units import KB, MB


def tasks_of(group, count, seconds=1.0, read_mb=0.0):
    result = []
    for _ in range(count):
        phases = []
        if read_mb:
            phases.append(
                IoPhase(role="local", total_bytes=read_mb * MB,
                        request_size=30 * KB, is_write=False,
                        per_stream_cap=60 * MB)
            )
        phases.append(ComputePhase(seconds))
        result.append(SimTask(phases=tuple(phases), group=group))
    return result


class TestRunStage:
    def test_measurement_fields(self, ssd_cluster):
        tasks = tasks_of("work", 12, seconds=2.0, read_mb=30)
        measurement = run_stage(ssd_cluster, 4, tasks, name="stage-x")
        assert measurement.name == "stage-x"
        assert measurement.nodes == 3
        assert measurement.cores_per_node == 4
        assert measurement.num_tasks == 12
        assert measurement.read_bytes == pytest.approx(12 * 30 * MB)
        assert measurement.write_bytes == 0.0
        assert measurement.makespan == pytest.approx(2.5, rel=0.05)

    def test_group_averages(self, ssd_cluster):
        tasks = tasks_of("fast", 6, seconds=1.0) + tasks_of("slow", 6, seconds=3.0)
        measurement = run_stage(ssd_cluster, 4, tasks)
        assert measurement.group_t_avg("fast") == pytest.approx(1.0)
        assert measurement.group_t_avg("slow") == pytest.approx(3.0)
        assert measurement.t_avg == pytest.approx(2.0)
        assert measurement.task_counts == {"fast": 6, "slow": 6}

    def test_unknown_group(self, ssd_cluster):
        measurement = run_stage(ssd_cluster, 2, tasks_of("only", 2))
        with pytest.raises(SimulationError):
            measurement.group_t_avg("missing")

    def test_first_finish_estimates_latency(self, ssd_cluster):
        measurement = run_stage(ssd_cluster, 2, tasks_of("g", 8, seconds=2.0))
        assert measurement.first_finish_seconds == pytest.approx(2.0)

    def test_iostat_samples_present_for_io(self, ssd_cluster):
        measurement = run_stage(ssd_cluster, 2, tasks_of("g", 4, read_mb=60))
        assert measurement.iostat_samples
        assert all(not sample.is_write for sample in measurement.iostat_samples)


class TestRunApplication:
    def test_total_is_sum_of_stages(self, ssd_cluster):
        staged = [
            ("a", tasks_of("g", 6, seconds=1.0)),
            ("b", tasks_of("g", 6, seconds=2.0)),
        ]
        app = run_application(ssd_cluster, 2, staged, name="app")
        assert app.name == "app"
        assert app.total_seconds == pytest.approx(
            sum(stage.makespan for stage in app.stages)
        )
        assert app.stage("b").makespan > app.stage("a").makespan

    def test_stage_lookup_error(self, ssd_cluster):
        app = run_application(ssd_cluster, 2, [("a", tasks_of("g", 2))])
        with pytest.raises(SimulationError):
            app.stage("zzz")
