"""Unit tests for simulator task/phase descriptions."""

import pytest

from repro.errors import SimulationError
from repro.simulator.task import ComputePhase, IoPhase, SimTask
from repro.units import KB, MB


class TestIoPhase:
    def test_valid(self):
        phase = IoPhase(role="local", total_bytes=27 * MB, request_size=30 * KB,
                        is_write=False, per_stream_cap=60 * MB)
        assert phase.role == "local"

    def test_unknown_role(self):
        with pytest.raises(SimulationError):
            IoPhase(role="nvme", total_bytes=1.0, request_size=1.0, is_write=False)

    def test_negative_bytes(self):
        with pytest.raises(SimulationError):
            IoPhase(role="hdfs", total_bytes=-1.0, request_size=1.0, is_write=False)

    def test_invalid_request_size(self):
        with pytest.raises(SimulationError):
            IoPhase(role="hdfs", total_bytes=1.0, request_size=0.0, is_write=False)

    def test_invalid_cap(self):
        with pytest.raises(SimulationError):
            IoPhase(role="hdfs", total_bytes=1.0, request_size=1.0,
                    is_write=False, per_stream_cap=0.0)


class TestComputePhase:
    def test_negative_duration(self):
        with pytest.raises(SimulationError):
            ComputePhase(-1.0)

    def test_zero_allowed(self):
        assert ComputePhase(0.0).seconds == 0.0


class TestSimTask:
    def test_needs_phases(self):
        with pytest.raises(SimulationError):
            SimTask(phases=())

    def test_duration_requires_completion(self):
        task = SimTask(phases=(ComputePhase(1.0),))
        with pytest.raises(SimulationError):
            _ = task.duration

    def test_io_bytes_accounting(self):
        task = SimTask(
            phases=(
                IoPhase(role="hdfs", total_bytes=10 * MB, request_size=1 * MB,
                        is_write=False),
                ComputePhase(1.0),
                IoPhase(role="local", total_bytes=20 * MB, request_size=1 * MB,
                        is_write=True),
            )
        )
        assert task.io_bytes() == pytest.approx(30 * MB)
        assert task.io_bytes(is_write=False) == pytest.approx(10 * MB)
        assert task.io_bytes(is_write=True) == pytest.approx(20 * MB)
        assert task.compute_seconds() == pytest.approx(1.0)

    def test_unique_ids(self):
        a = SimTask(phases=(ComputePhase(0.0),))
        b = SimTask(phases=(ComputePhase(0.0),))
        assert a.task_id != b.task_id
