"""Unit tests for the prediction-driven job scheduler."""

import pytest

from repro.schedule.scheduler import (
    Job,
    ScheduleResult,
    SchedulingError,
    fifo_order,
    oracle_order,
    simulate_queue,
    spjf_order,
)


def jobs_batch():
    """Three batch jobs with accurate predictions, longest first in FIFO."""
    return [
        Job(name="long", true_runtime=100.0, predicted_runtime=95.0),
        Job(name="mid", true_runtime=50.0, predicted_runtime=52.0),
        Job(name="short", true_runtime=10.0, predicted_runtime=11.0),
    ]


class TestPolicies:
    def test_fifo_by_arrival(self):
        jobs = [
            Job("b", 1.0, 1.0, arrival_time=5.0),
            Job("a", 1.0, 1.0, arrival_time=0.0),
        ]
        assert [j.name for j in fifo_order(jobs)] == ["a", "b"]

    def test_spjf_by_prediction(self):
        ordered = spjf_order(jobs_batch())
        assert [j.name for j in ordered] == ["short", "mid", "long"]

    def test_oracle_by_truth(self):
        mispredicted = [
            Job("a", true_runtime=10.0, predicted_runtime=100.0),
            Job("b", true_runtime=100.0, predicted_runtime=10.0),
        ]
        assert [j.name for j in oracle_order(mispredicted)] == ["a", "b"]
        assert [j.name for j in spjf_order(mispredicted)] == ["b", "a"]


class TestSimulateQueue:
    def test_fifo_waiting_times(self):
        result = simulate_queue(jobs_batch(), fifo_order, "fifo")
        by_name = {s.job.name: s for s in result.scheduled}
        assert by_name["long"].waiting_time == 0.0
        assert by_name["mid"].waiting_time == 100.0
        assert by_name["short"].waiting_time == 150.0
        assert result.mean_waiting_time == pytest.approx(250 / 3)

    def test_spjf_cuts_mean_wait(self):
        fifo = simulate_queue(jobs_batch(), fifo_order, "fifo")
        spjf = simulate_queue(jobs_batch(), spjf_order, "spjf")
        assert spjf.mean_waiting_time < fifo.mean_waiting_time
        # SJF on this batch: waits 0, 10, 60 -> mean 23.3.
        assert spjf.mean_waiting_time == pytest.approx(70 / 3)

    def test_makespan_policy_independent(self):
        fifo = simulate_queue(jobs_batch(), fifo_order, "fifo")
        spjf = simulate_queue(jobs_batch(), spjf_order, "spjf")
        assert fifo.makespan == pytest.approx(spjf.makespan)

    def test_arrivals_respected(self):
        jobs = [
            Job("first", 10.0, 10.0, arrival_time=0.0),
            Job("tiny", 1.0, 1.0, arrival_time=5.0),
        ]
        result = simulate_queue(jobs, spjf_order, "spjf")
        by_name = {s.job.name: s for s in result.scheduled}
        # tiny arrives mid-run; non-preemptive, so it waits for first.
        assert by_name["tiny"].start_time == pytest.approx(10.0)

    def test_idle_gap_jumps_clock(self):
        jobs = [
            Job("late", 5.0, 5.0, arrival_time=100.0),
        ]
        result = simulate_queue(jobs, fifo_order, "fifo")
        assert result.scheduled[0].start_time == pytest.approx(100.0)
        assert result.scheduled[0].waiting_time == 0.0

    def test_turnaround_time(self):
        result = simulate_queue(jobs_batch(), fifo_order, "fifo")
        by_name = {s.job.name: s for s in result.scheduled}
        assert by_name["long"].turnaround_time == pytest.approx(100.0)

    def test_empty_queue_rejected(self):
        with pytest.raises(SchedulingError):
            simulate_queue([], fifo_order)

    def test_empty_result_metrics_rejected(self):
        with pytest.raises(SchedulingError):
            _ = ScheduleResult(policy="x").mean_waiting_time

    def test_invalid_job(self):
        with pytest.raises(SchedulingError):
            Job("bad", true_runtime=-1.0, predicted_runtime=1.0)
        with pytest.raises(SchedulingError):
            Job("bad", true_runtime=1.0, predicted_runtime=1.0,
                arrival_time=-1.0)


class TestAccuratePredictionsApproachOracle:
    def test_spjf_with_doppio_quality_errors_matches_oracle(self):
        # Doppio's ~5% errors never change the relative order of jobs
        # whose lengths differ by more than ~10%.
        jobs = [
            Job("a", 100.0, 103.0),
            Job("b", 50.0, 48.0),
            Job("c", 200.0, 192.0),
            Job("d", 25.0, 26.0),
        ]
        spjf = simulate_queue(jobs, spjf_order, "spjf")
        oracle = simulate_queue(jobs, oracle_order, "oracle")
        assert spjf.mean_waiting_time == pytest.approx(
            oracle.mean_waiting_time
        )
