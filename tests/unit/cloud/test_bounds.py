"""Unit tests for the admissible search bounds (:mod:`repro.cloud.bounds`)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloud.bounds import RuntimeLowerBound
from repro.cloud.disks import _ANCHOR_SIZES, bandwidth_upper_bound, make_persistent_disk
from repro.cloud.optimizer import CostOptimizer
from repro.errors import ConfigurationError

KINDS = ("pd-standard", "pd-ssd")

# Spans well below the 4 KB anchor and well above the 512 MB one, so the
# clamped-flat edges of the table are exercised, not just the interior.
request_sizes = st.one_of(
    st.sampled_from(_ANCHOR_SIZES),
    st.floats(min_value=512.0, max_value=4e9),
)


class TestBandwidthUpperBound:
    @settings(deadline=None, derandomize=True, database=None, max_examples=200)
    @given(
        kind=st.sampled_from(KINDS),
        size_gb=st.floats(min_value=10.0, max_value=65536.0),
        request_size=request_sizes,
        is_write=st.booleans(),
    )
    def test_dominates_built_table(self, kind, size_gb, request_size, is_write):
        """The bound is never below what a real built disk would deliver."""
        disk = make_persistent_disk(kind, size_gb)
        table = disk.write_table if is_write else disk.read_table
        bound = bandwidth_upper_bound(kind, size_gb, request_size, is_write)
        assert table.bandwidth(request_size) <= bound * (1 + 1e-9)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            bandwidth_upper_bound("pd-extreme", 100.0, 128 * 1024)

    def test_sub_anchor_requests_clamped(self):
        """Below the smallest anchor the bound uses the 4 KB spec value."""
        tiny = bandwidth_upper_bound("pd-ssd", 100.0, 512.0)
        at_anchor = bandwidth_upper_bound("pd-ssd", 100.0, _ANCHOR_SIZES[0])
        assert tiny == at_anchor


class TestRuntimeLowerBound:
    @pytest.fixture(scope="class")
    def optimizer(self, gatk4_predictor):
        return CostOptimizer(
            gatk4_predictor, num_workers=10, min_hdfs_gb=60, min_local_gb=45
        )

    @pytest.fixture(scope="class")
    def bound(self, gatk4_predictor):
        return RuntimeLowerBound(gatk4_predictor.report)

    def test_admissible_across_candidate_grid(self, optimizer, bound):
        """runtime/cost bounds never exceed the full model's values."""
        for vcpus in (4, 16, 32):
            for hdfs_kind in KINDS:
                for local_kind in KINDS:
                    for size in (200.0, 1000.0, 4000.0):
                        config = optimizer.make_config(
                            vcpus, hdfs_kind, size, local_kind, size
                        )
                        result = optimizer.evaluate(config)
                        assert (
                            bound.runtime_bound(config) <= result.runtime_seconds
                        )
                        assert bound.cost_bound(config) <= result.cost_dollars

    def test_bound_is_positive_and_monotone_in_nodes(self, gatk4_predictor, bound):
        few = CostOptimizer(gatk4_predictor, num_workers=5).make_config(
            16, "pd-standard", 1000, "pd-ssd", 500
        )
        many = CostOptimizer(gatk4_predictor, num_workers=20).make_config(
            16, "pd-standard", 1000, "pd-ssd", 500
        )
        assert bound.runtime_bound(many) > 0
        assert bound.runtime_bound(many) < bound.runtime_bound(few)
