"""Unit tests for the R1/R2 reference configurations."""

import pytest

from repro.cloud.recommendations import (
    r1_spark_recommendation,
    r2_cloudera_recommendation,
)


class TestR1:
    def test_8tb_for_16_vcpus(self):
        config = r1_spark_recommendation(vcpus=16)
        assert config.hdfs_disk_gb + config.local_disk_gb == pytest.approx(8000)
        assert config.hdfs_disk_kind == "pd-standard"
        assert config.machine.vcpus == 16

    def test_ratio_scales_with_cores(self):
        config = r1_spark_recommendation(vcpus=8)
        assert config.hdfs_disk_gb + config.local_disk_gb == pytest.approx(4000)


class TestR2:
    def test_16tb_for_16_vcpus(self):
        config = r2_cloudera_recommendation(vcpus=16)
        assert config.hdfs_disk_gb + config.local_disk_gb == pytest.approx(16000)

    def test_r2_costs_more_than_r1(self):
        r1 = r1_spark_recommendation()
        r2 = r2_cloudera_recommendation()
        assert r2.hourly_rate() > r1.hourly_rate()

    def test_worker_count_parameter(self):
        assert r2_cloudera_recommendation(num_workers=5).num_workers == 5
