"""Unit tests for the Google Cloud persistent-disk model."""

import pytest

from repro.cloud.disks import PD_SSD, PD_STANDARD, make_persistent_disk
from repro.errors import ConfigurationError
from repro.units import GB, KB, MB


class TestSpecs:
    def test_throughput_scales_until_cap(self):
        assert PD_STANDARD.read_throughput_limit(500) == pytest.approx(60 * MB)
        assert PD_STANDARD.read_throughput_limit(1500) == pytest.approx(180 * MB)
        assert PD_STANDARD.read_throughput_limit(4000) == pytest.approx(180 * MB)

    def test_iops_scale_until_cap(self):
        assert PD_STANDARD.read_iops_limit(200) == pytest.approx(150.0)
        assert PD_STANDARD.read_iops_limit(4000) == pytest.approx(3000.0)
        assert PD_STANDARD.read_iops_limit(8000) == pytest.approx(3000.0)

    def test_small_requests_iops_bound(self):
        # 200 GB pd-standard at 30 KB requests: 150 IOPS * 30 KB ~ 4.4 MB/s.
        bandwidth = PD_STANDARD.read_bandwidth(200, 30 * KB)
        assert bandwidth == pytest.approx(150 * 30 * KB)

    def test_large_requests_throughput_bound(self):
        bandwidth = PD_STANDARD.read_bandwidth(200, 128 * MB)
        assert bandwidth == pytest.approx(0.12 * MB * 200)

    def test_ssd_much_faster_at_small_requests(self):
        hdd_bandwidth = PD_STANDARD.read_bandwidth(200, 30 * KB)
        ssd_bandwidth = PD_SSD.read_bandwidth(200, 30 * KB)
        assert ssd_bandwidth / hdd_bandwidth > 10


class TestMakePersistentDisk:
    def test_device_fields(self):
        disk = make_persistent_disk("pd-ssd", 500)
        assert disk.kind == "pd-ssd"
        assert disk.capacity_bytes == pytest.approx(500 * GB)
        assert "500GB" in disk.name

    def test_bandwidth_tables_match_spec(self):
        disk = make_persistent_disk("pd-standard", 1000)
        assert disk.read_bandwidth(128 * MB) == pytest.approx(
            PD_STANDARD.read_bandwidth(1000, 128 * MB)
        )
        assert disk.write_bandwidth(30 * KB) == pytest.approx(
            PD_STANDARD.write_bandwidth(1000, 30 * KB)
        )

    def test_bigger_disk_is_never_slower(self):
        small = make_persistent_disk("pd-standard", 200)
        large = make_persistent_disk("pd-standard", 2000)
        for request in (4 * KB, 30 * KB, 1 * MB, 128 * MB):
            assert large.read_bandwidth(request) >= small.read_bandwidth(request)

    def test_shuffle_read_scaling_with_size(self):
        # The mechanism behind Fig. 14: growing the local disk raises the
        # IOPS limit and therefore the ~28 KB shuffle-read bandwidth.
        request = 28 * KB
        bandwidths = [
            make_persistent_disk("pd-standard", size).read_bandwidth(request)
            for size in (200, 500, 1000, 2000)
        ]
        assert bandwidths == sorted(bandwidths)
        assert bandwidths[-1] > 5 * bandwidths[0]

    def test_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            make_persistent_disk("pd-extreme", 100)

    def test_invalid_size(self):
        with pytest.raises(ConfigurationError):
            make_persistent_disk("pd-ssd", 0)

    def test_custom_name(self):
        assert make_persistent_disk("pd-ssd", 100, name="x").name == "x"
