"""Unit tests for cloud pricing (Table V and the cost function)."""

import pytest

from repro.cloud.instance import machine_for_vcpus
from repro.cloud.pricing import (
    CloudConfiguration,
    DISK_PRICE_PER_GB_MONTH,
    configuration_cost,
    disk_cost_per_hour,
    disk_price_ratio,
)
from repro.errors import ConfigurationError
from repro.units import MONTH_HOURS


class TestTableV:
    def test_standard_price(self):
        assert DISK_PRICE_PER_GB_MONTH["pd-standard"] == 0.040

    def test_ssd_price(self):
        assert DISK_PRICE_PER_GB_MONTH["pd-ssd"] == 0.170

    def test_ssd_premium_is_4_2x(self):
        # The paper quotes SSD at 4.2x the standard price.
        assert disk_price_ratio() == pytest.approx(4.25, abs=0.1)


class TestDiskCost:
    def test_hourly_conversion(self):
        per_hour = disk_cost_per_hour("pd-standard", 1000)
        assert per_hour == pytest.approx(1000 * 0.040 / MONTH_HOURS)

    def test_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            disk_cost_per_hour("pd-extreme", 100)

    def test_negative_size(self):
        with pytest.raises(ConfigurationError):
            disk_cost_per_hour("pd-ssd", -1)


@pytest.fixture()
def config():
    return CloudConfiguration(
        machine=machine_for_vcpus(16),
        num_workers=10,
        hdfs_disk_kind="pd-standard",
        hdfs_disk_gb=1000,
        local_disk_kind="pd-ssd",
        local_disk_gb=200,
    )


class TestCloudConfiguration:
    def test_cores_per_node(self, config):
        assert config.cores_per_node == 16

    def test_hourly_rate_composition(self, config):
        per_node = (
            machine_for_vcpus(16).price_per_hour
            + disk_cost_per_hour("pd-standard", 1000)
            + disk_cost_per_hour("pd-ssd", 200)
        )
        assert config.hourly_rate() == pytest.approx(10 * per_node)

    def test_cost_for_runtime(self, config):
        # The paper's optimal configuration shape: ten 16-vCPU workers with
        # a 1 TB HDD + 200 GB SSD, a ~$8.6/hour cluster; sub-hour genome
        # runs land in the single-digit dollars, as in Fig. 15.
        cost = config.cost_for_runtime(43 * 60)
        assert cost == pytest.approx(config.hourly_rate() * 43 / 60)
        assert 4.0 < cost < 8.0

    def test_cost_function_alias(self, config):
        assert configuration_cost(config, 3600) == pytest.approx(
            config.hourly_rate()
        )

    def test_label(self, config):
        label = config.label()
        assert "16vCPU" in label and "pd-ssd" in label

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CloudConfiguration(
                machine=machine_for_vcpus(16), num_workers=0,
                hdfs_disk_kind="pd-standard", hdfs_disk_gb=100,
                local_disk_kind="pd-ssd", local_disk_gb=100,
            )
        with pytest.raises(ConfigurationError):
            CloudConfiguration(
                machine=machine_for_vcpus(16), num_workers=1,
                hdfs_disk_kind="pd-standard", hdfs_disk_gb=0,
                local_disk_kind="pd-ssd", local_disk_gb=100,
            )

    def test_negative_runtime(self, config):
        with pytest.raises(ConfigurationError):
            config.cost_for_runtime(-1.0)


class TestMachineTypes:
    def test_n1_standard_16_price(self):
        machine = machine_for_vcpus(16)
        assert machine.price_per_hour == pytest.approx(0.76)
        assert machine.vcpus == 16

    def test_linear_pricing(self):
        assert machine_for_vcpus(32).price_per_hour == pytest.approx(
            2 * machine_for_vcpus(16).price_per_hour
        )

    def test_unknown_vcpus(self):
        with pytest.raises(ConfigurationError):
            machine_for_vcpus(7)
