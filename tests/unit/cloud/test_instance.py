"""Unit tests for machine types."""

import pytest

from repro.cloud.instance import MachineType, N1_STANDARD, machine_for_vcpus
from repro.errors import ConfigurationError
from repro.units import GB


class TestN1Standard:
    def test_family_covers_paper_sizes(self):
        vcpus = [machine.vcpus for machine in N1_STANDARD]
        assert 16 in vcpus  # the paper's worker shape
        assert vcpus == sorted(vcpus)

    def test_ram_scales_with_vcpus(self):
        machine = machine_for_vcpus(16)
        assert machine.ram_bytes == pytest.approx(60 * GB)

    def test_price_is_linear(self):
        per_vcpu = {
            machine.vcpus: machine.price_per_hour / machine.vcpus
            for machine in N1_STANDARD
        }
        rates = set(round(rate, 4) for rate in per_vcpu.values())
        assert len(rates) == 1

    def test_names_follow_convention(self):
        assert machine_for_vcpus(8).name == "n1-standard-8"


class TestValidation:
    def test_unknown_size(self):
        with pytest.raises(ConfigurationError):
            machine_for_vcpus(3)

    def test_invalid_machine(self):
        with pytest.raises(ConfigurationError):
            MachineType(name="bad", vcpus=0, ram_bytes=1.0, price_per_hour=1.0)
        with pytest.raises(ConfigurationError):
            MachineType(name="bad", vcpus=1, ram_bytes=1.0, price_per_hour=0.0)
