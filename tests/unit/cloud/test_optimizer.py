"""Unit tests for the cost optimizer."""

import pytest

from repro.cloud.optimizer import CostOptimizer, _adjacent
from repro.cloud.recommendations import (
    r1_spark_recommendation,
    r2_cloudera_recommendation,
)
from repro.errors import OptimizationError


@pytest.fixture(scope="module")
def optimizer(gatk4_predictor):
    return CostOptimizer(
        gatk4_predictor, num_workers=10, min_hdfs_gb=60, min_local_gb=45
    )


class TestEvaluation:
    def test_feasibility(self, optimizer):
        too_small = optimizer.make_config(16, "pd-standard", 10, "pd-ssd", 10)
        assert not optimizer.is_feasible(too_small)
        with pytest.raises(OptimizationError):
            optimizer.evaluate(too_small)

    def test_evaluate_fields(self, optimizer):
        config = optimizer.make_config(16, "pd-standard", 1000, "pd-ssd", 200)
        result = optimizer.evaluate(config)
        assert result.runtime_seconds > 0
        assert result.cost_dollars == pytest.approx(
            config.cost_for_runtime(result.runtime_seconds)
        )

    def test_bigger_local_disk_is_not_slower(self, optimizer):
        small = optimizer.evaluate(
            optimizer.make_config(16, "pd-standard", 1000, "pd-standard", 200)
        )
        large = optimizer.evaluate(
            optimizer.make_config(16, "pd-standard", 1000, "pd-standard", 2000)
        )
        assert large.runtime_seconds <= small.runtime_seconds

    def test_invalid_worker_count(self, gatk4_predictor):
        with pytest.raises(OptimizationError):
            CostOptimizer(gatk4_predictor, num_workers=0)


class TestGridSearch:
    def test_beats_recommendations(self, optimizer):
        result = optimizer.grid_search(vcpu_grid=(8, 16))
        r1 = optimizer.evaluate(r1_spark_recommendation())
        r2 = optimizer.evaluate(r2_cloudera_recommendation())
        assert result.best.cost_dollars < r1.cost_dollars
        assert result.best.cost_dollars < r2.cost_dollars
        # The paper saves 38% and 57%; shapes should be comparable.
        assert result.savings_versus(r1) > 0.2
        assert result.savings_versus(r2) > 0.4

    def test_best_is_minimum(self, optimizer):
        result = optimizer.grid_search(
            vcpu_grid=(16,), hdfs_sizes_gb=(500, 1000), local_sizes_gb=(200, 500)
        )
        assert result.best.cost_dollars == min(
            e.cost_dollars for e in result.evaluated
        )

    def test_infeasible_sizes_skipped(self, optimizer):
        result = optimizer.grid_search(
            vcpu_grid=(16,), hdfs_sizes_gb=(20, 1000), local_sizes_gb=(20, 200)
        )
        for evaluated in result.evaluated:
            assert optimizer.is_feasible(evaluated.config)

    def test_empty_grid_rejected(self, optimizer):
        with pytest.raises(OptimizationError):
            optimizer.grid_search(vcpu_grid=(16,), hdfs_sizes_gb=(10,),
                                  local_sizes_gb=(10,))

    def test_unknown_disk_kind(self, optimizer):
        with pytest.raises(OptimizationError):
            optimizer.grid_search(disk_kinds=("pd-extreme",))


class TestPrunedSearch:
    def test_same_best_as_exhaustive(self, optimizer):
        kwargs = dict(
            vcpu_grid=(8, 16, 32),
            hdfs_sizes_gb=(500, 1000),
            local_sizes_gb=(200, 500, 1000),
        )
        full = optimizer.grid_search(**kwargs)
        pruned = optimizer.grid_search(prune=True, **kwargs)
        assert pruned.best.config == full.best.config
        assert pruned.best.cost_dollars == full.best.cost_dollars

    def test_counts_account_for_every_candidate(self, optimizer):
        kwargs = dict(vcpu_grid=(8, 16, 32))
        full = optimizer.grid_search(**kwargs)
        pruned = optimizer.grid_search(prune=True, **kwargs)
        assert full.num_pruned == 0
        assert pruned.num_pruned > 0  # the bound must actually bite
        assert pruned.num_considered == full.num_considered
        assert len(pruned.evaluated) + pruned.num_pruned == len(full.evaluated)

    def test_pruned_evaluations_are_a_subset(self, optimizer):
        kwargs = dict(vcpu_grid=(8, 16))
        full = {e.config for e in optimizer.grid_search(**kwargs).evaluated}
        pruned = optimizer.grid_search(prune=True, **kwargs)
        assert {e.config for e in pruned.evaluated} <= full


class TestParallelSearch:
    def test_workers_do_not_change_the_result(self, optimizer):
        kwargs = dict(
            vcpu_grid=(8, 16), hdfs_sizes_gb=(500, 1000), local_sizes_gb=(200,)
        )
        serial = optimizer.grid_search(**kwargs)
        parallel = optimizer.grid_search(workers=2, **kwargs)
        assert parallel.best.config == serial.best.config
        assert [e.config for e in parallel.evaluated] == [
            e.config for e in serial.evaluated
        ]
        assert [e.cost_dollars for e in parallel.evaluated] == [
            e.cost_dollars for e in serial.evaluated
        ]

    def test_invalid_workers_rejected(self, optimizer):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            optimizer.grid_search(vcpu_grid=(8,), workers=-2)


class TestCoordinateDescent:
    def test_descends_to_local_optimum(self, optimizer):
        start = optimizer.make_config(32, "pd-standard", 4000, "pd-standard", 4000)
        result = optimizer.coordinate_descent(start)
        assert result.best.cost_dollars <= optimizer.evaluate(start).cost_dollars
        # The winner's cost should be close to the grid optimum for the
        # same (HDD, HDD) disk types.
        grid = optimizer.grid_search(disk_kinds=("pd-standard",))
        assert result.best.cost_dollars <= grid.best.cost_dollars * 1.25

    def test_start_must_be_feasible(self, optimizer):
        bad = optimizer.make_config(16, "pd-standard", 10, "pd-standard", 10)
        with pytest.raises(OptimizationError):
            optimizer.coordinate_descent(bad)


class TestCapacityRequirements:
    def test_gatk4_requirements(self, gatk4_workload):
        hdfs_gb, local_gb = CostOptimizer.capacity_requirements(
            gatk4_workload, num_workers=10
        )
        # HDFS: 121.6 GB input + 332 GB replicated output, x1.2 / 10.
        assert hdfs_gb == pytest.approx((121.6 + 332) * 1.2 / 10, rel=0.02)
        # Local: the 334 GB shuffle, x1.2 / 10.
        assert local_gb == pytest.approx(334 * 1.2 / 10, rel=0.02)


class TestAdjacent:
    def test_interior(self):
        assert _adjacent([1, 2, 4, 8], 4) == [2, 8]

    def test_edges(self):
        assert _adjacent([1, 2, 4], 1) == [2]
        assert _adjacent([1, 2, 4], 4) == [2]

    def test_off_grid_value(self):
        assert _adjacent([1, 2, 4], 3) == [2, 4]
