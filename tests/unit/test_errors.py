"""Unit tests for the exception hierarchy."""

import pytest

from repro import errors
from repro.schedule.scheduler import SchedulingError


class TestHierarchy:
    def test_all_derive_from_doppio_error(self):
        subclasses = [
            errors.ConfigurationError,
            errors.StorageError,
            errors.FileNotFoundInStoreError,
            errors.SimulationError,
            errors.SchedulerError,
            errors.ModelError,
            errors.ProfilingError,
            errors.OptimizationError,
            errors.WorkloadError,
            SchedulingError,
        ]
        for cls in subclasses:
            assert issubclass(cls, errors.DoppioError)

    def test_file_not_found_is_storage_error(self):
        assert issubclass(errors.FileNotFoundInStoreError, errors.StorageError)

    def test_catch_all_at_api_boundary(self):
        # A caller catching DoppioError sees every library failure.
        with pytest.raises(errors.DoppioError):
            raise errors.ProfilingError("boom")

    def test_messages_preserved(self):
        try:
            raise errors.ModelError("bandwidth must be positive")
        except errors.DoppioError as caught:
            assert "bandwidth" in str(caught)
