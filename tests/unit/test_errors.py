"""Unit tests for the exception hierarchy."""

import pytest

from repro import errors
from repro.schedule.scheduler import SchedulingError


class TestHierarchy:
    def test_all_derive_from_doppio_error(self):
        subclasses = [
            errors.ConfigurationError,
            errors.StorageError,
            errors.FileNotFoundInStoreError,
            errors.SimulationError,
            errors.SchedulerError,
            errors.ModelError,
            errors.ProfilingError,
            errors.OptimizationError,
            errors.WorkloadError,
            errors.ExecutionError,
            SchedulingError,
        ]
        for cls in subclasses:
            assert issubclass(cls, errors.DoppioError)

    def test_file_not_found_is_storage_error(self):
        assert issubclass(errors.FileNotFoundInStoreError, errors.StorageError)

    def test_catch_all_at_api_boundary(self):
        # A caller catching DoppioError sees every library failure.
        with pytest.raises(errors.DoppioError):
            raise errors.ProfilingError("boom")

    def test_messages_preserved(self):
        try:
            raise errors.ModelError("bandwidth must be positive")
        except errors.DoppioError as caught:
            assert "bandwidth" in str(caught)

    def test_stage_failed_is_a_simulation_error_with_structure(self):
        error = errors.StageFailedError(
            stage="s0", task_id=3, attempts=4, stage_attempts=2,
            reason="stream stalled",
        )
        assert isinstance(error, errors.SimulationError)
        assert error.stage == "s0" and error.task_id == 3
        assert "aborted" in str(error) and "stalled" in str(error)


class TestExitCodes:
    def test_config_class_maps_to_2(self):
        assert errors.exit_code_for(errors.ConfigurationError("x")) == 2
        assert errors.exit_code_for(errors.WorkloadError("x")) == 2

    def test_fault_class_maps_to_4(self):
        assert errors.exit_code_for(errors.FaultError("x")) == 4

    def test_execution_class_maps_to_5(self):
        assert errors.exit_code_for(errors.ExecutionError("x")) == 5

    def test_execution_error_carries_structured_failures(self):
        from repro.parallel import TaskFailure

        failure = TaskFailure(
            index=2, item=(3, 4, 0), kind="timeout", attempts=3,
            error_type="TimeoutError", message="no result within 1s",
        )
        error = errors.ExecutionError("grid failed", failures=(failure,))
        assert error.failures == (failure,)
        assert "timeout" in failure.describe()
        plain = errors.ExecutionError("no detail")
        assert plain.failures == ()

    def test_everything_else_maps_to_3(self):
        for cls in (
            errors.SimulationError,
            errors.StorageError,
            errors.ModelError,
            errors.ProfilingError,
            errors.OptimizationError,
        ):
            assert errors.exit_code_for(cls("x")) == 3
        stage_failed = errors.StageFailedError("s", 0, 1, 1, "r")
        assert errors.exit_code_for(stage_failed) == 3

    def test_service_class_maps_to_6(self):
        assert errors.exit_code_for(errors.ServiceError("x")) == 6
        admission = errors.AdmissionError("full", queue_depth=16, queue_cap=16)
        assert errors.exit_code_for(admission) == 6

    def test_query_error_is_a_config_problem_not_a_service_fault(self):
        # QueryError subclasses ServiceError, but a malformed query is
        # the caller's mistake: it must map to the config exit code.
        assert errors.exit_code_for(errors.QueryError("bad payload")) == 2

    def test_admission_error_carries_queue_structure(self):
        error = errors.AdmissionError("queue full", queue_depth=9, queue_cap=8)
        assert error.queue_depth == 9
        assert error.queue_cap == 8
        assert isinstance(error, errors.ServiceError)

    def test_constants_are_distinct(self):
        codes = {
            errors.EXIT_OK, errors.EXIT_CONFIG_ERROR,
            errors.EXIT_SIMULATION_ERROR, errors.EXIT_FAULT_ERROR,
            errors.EXIT_EXECUTION_ERROR, errors.EXIT_SERVICE_ERROR,
        }
        assert len(codes) == 6
        assert 1 not in codes  # reserved for unexpected crashes
