"""Unit tests for the supervised execution layer (:mod:`repro.parallel`).

Process-pool tests use tiny item counts and near-zero backoffs so the
whole module stays fast; the heavier end-to-end fault scenarios (worker
SIGKILL mid-grid, hangs, checkpoint resume) live in ``tests/chaos/``.
"""

import os
import signal

import pytest

from repro.errors import ConfigurationError, ExecutionError
from repro.parallel import (
    KIND_EXCEPTION,
    KIND_WORKER_LOSS,
    ExecutionPolicy,
    ProcessPoolBackend,
    SerialBackend,
    SupervisionReport,
    TaskFailure,
    TaskSupervisor,
    validate_execution,
)

FAST = dict(backoff_base_seconds=0.001, backoff_max_seconds=0.01)


def _double(x):
    return 2 * x


def _poison_three(x):
    if x == 3:
        raise ValueError("poison")
    return 2 * x


def _fail_odd(x):
    if x % 2:
        raise RuntimeError(f"odd {x}")
    return x


def _die(x):
    os.kill(os.getpid(), signal.SIGKILL)


class TestExecutionPolicy:
    def test_defaults_are_valid(self):
        policy = ExecutionPolicy()
        assert policy.max_attempts == 3
        assert policy.timeout_seconds is None
        assert policy.on_failure == "quarantine"

    @pytest.mark.parametrize("bad", [
        dict(max_attempts=0),
        dict(max_attempts=True),
        dict(max_attempts=2.5),
        dict(timeout_seconds=0.0),
        dict(timeout_seconds=-1.0),
        dict(backoff_base_seconds=-0.1),
        dict(backoff_factor=0.5),
        dict(backoff_max_seconds=-1.0),
        dict(on_failure="explode"),
    ])
    def test_invalid_fields_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            ExecutionPolicy(**bad)

    def test_backoff_schedule_is_deterministic_exponential(self):
        policy = ExecutionPolicy(
            backoff_base_seconds=0.1, backoff_factor=2.0,
            backoff_max_seconds=0.35,
        )
        assert policy.backoff_seconds(0) == 0.0
        assert policy.backoff_seconds(1) == pytest.approx(0.1)
        assert policy.backoff_seconds(2) == pytest.approx(0.2)
        assert policy.backoff_seconds(3) == pytest.approx(0.35)  # capped
        assert policy.backoff_seconds(9) == pytest.approx(0.35)
        # Pure: same input, same wait, every time.
        assert policy.backoff_seconds(2) == policy.backoff_seconds(2)

    def test_describe_mentions_every_knob(self):
        text = ExecutionPolicy(timeout_seconds=30.0).describe()
        assert "3 attempt(s)" in text
        assert "30s timeout" in text
        assert "quarantine" in text

    def test_validate_execution(self):
        policy = ExecutionPolicy()
        assert validate_execution(policy) is policy
        assert validate_execution(None) is None
        with pytest.raises(ConfigurationError):
            validate_execution("retry-hard")


class TestSupervisionReport:
    def test_ok_and_raise(self):
        report = SupervisionReport(results=[1, 2])
        assert report.ok
        report.raise_if_failed()  # no-op

    def test_raise_if_failed_is_structured(self):
        failure = TaskFailure(
            index=0, item="x", kind=KIND_EXCEPTION, attempts=2,
            error_type="ValueError", message="poison",
        )
        report = SupervisionReport(results=[None], failures=(failure,))
        with pytest.raises(ExecutionError) as err:
            report.raise_if_failed("my map")
        assert err.value.failures == (failure,)
        assert "my map" in str(err.value)
        assert "quarantined" in str(err.value)


class TestSupervisorValidation:
    def test_rejects_non_policy(self):
        with pytest.raises(ConfigurationError):
            TaskSupervisor(SerialBackend(), policy="always")

    def test_default_policy(self):
        assert TaskSupervisor(SerialBackend()).policy == ExecutionPolicy()

    def test_empty_items_short_circuit(self):
        with ProcessPoolBackend(2) as backend:
            report = TaskSupervisor(backend).run(_double, [])
            assert report.results == [] and report.ok
            assert backend._executor is None  # never spawned


class TestSerialSupervision:
    def test_clean_map_matches_backend(self):
        supervisor = TaskSupervisor(SerialBackend(), ExecutionPolicy(**FAST))
        assert supervisor.map(_double, [3, 1, 2]) == [6, 2, 4]

    def test_retries_then_quarantines(self):
        supervisor = TaskSupervisor(
            SerialBackend(), ExecutionPolicy(max_attempts=2, **FAST)
        )
        report = supervisor.run(_fail_odd, [0, 1, 2, 3])
        assert report.results == [0, None, 2, None]
        assert [f.index for f in report.failures] == [1, 3]
        assert all(f.attempts == 2 for f in report.failures)
        assert report.retries == 2  # one retry per failing item
        assert report.backoff_waits == (
            supervisor.policy.backoff_seconds(1),
        ) * 2

    def test_abort_stops_at_first_exhausted_item(self):
        supervisor = TaskSupervisor(
            SerialBackend(),
            ExecutionPolicy(max_attempts=1, on_failure="abort", **FAST),
        )
        report = supervisor.run(_fail_odd, [0, 1, 2])
        assert report.aborted and not report.ok
        assert [f.index for f in report.failures] == [1]
        assert report.results == [0, None, None]  # 2 never ran

    def test_on_result_fires_in_order_serially(self):
        seen = []
        supervisor = TaskSupervisor(SerialBackend(), ExecutionPolicy(**FAST))
        supervisor.run(_double, [5, 6], on_result=lambda i, r: seen.append((i, r)))
        assert seen == [(0, 10), (1, 12)]

    def test_map_raises_execution_error(self):
        supervisor = TaskSupervisor(
            SerialBackend(), ExecutionPolicy(max_attempts=1, **FAST)
        )
        with pytest.raises(ExecutionError):
            supervisor.map(_fail_odd, [1])


class TestPooledSupervision:
    def test_clean_map_is_ordered_and_charged_once(self):
        with ProcessPoolBackend(2) as backend:
            report = TaskSupervisor(backend, ExecutionPolicy(**FAST)).run(
                _double, list(range(12))
            )
        assert report.results == [2 * i for i in range(12)]
        assert report.ok
        assert report.attempts == 12
        assert report.retries == report.timeouts == report.worker_losses == 0
        assert report.pool_rebuilds == 0

    def test_single_poison_item_costs_exactly_one_item(self):
        # The chunking-blast-radius regression (ISSUE 9 satellite 1):
        # under chunked Executor.map one raising item discarded its whole
        # chunk; per-item supervised submission must lose only itself.
        with ProcessPoolBackend(2) as backend:
            supervisor = TaskSupervisor(
                backend, ExecutionPolicy(max_attempts=1, **FAST)
            )
            report = supervisor.run(_poison_three, list(range(10)))
        expected = [2 * i for i in range(10)]
        expected[3] = None
        assert report.results == expected
        assert [f.index for f in report.failures] == [3]
        assert report.failures[0].kind == KIND_EXCEPTION
        assert report.failures[0].error_type == "ValueError"

    def test_chunked_map_blast_radius_is_why_supervision_exists(self):
        # Contrast pin: the raw chunked map loses the whole call.
        with ProcessPoolBackend(2) as backend:
            with pytest.raises(ValueError):
                backend.map(_poison_three, list(range(10)))

    def test_worker_death_converges_to_quarantine(self):
        # An item that always kills its worker must exhaust its attempt
        # budget (each pool break charges it), not respawn pools forever.
        with ProcessPoolBackend(2) as backend:
            supervisor = TaskSupervisor(
                backend, ExecutionPolicy(max_attempts=2, **FAST)
            )
            report = supervisor.run(_die, [0])
        assert not report.ok
        assert report.failures[0].kind == KIND_WORKER_LOSS
        assert report.failures[0].attempts == 2
        assert report.pool_rebuilds >= 2
        assert report.worker_losses >= 2

    def test_on_result_receives_original_indices(self):
        seen = {}
        with ProcessPoolBackend(2) as backend:
            TaskSupervisor(backend, ExecutionPolicy(**FAST)).run(
                _double, [7, 8, 9], on_result=seen.__setitem__
            )
        assert seen == {0: 14, 1: 16, 2: 18}

    def test_results_bit_identical_to_serial(self):
        items = list(range(16))
        serial = [_double(item) for item in items]
        with ProcessPoolBackend(3) as backend:
            supervised = TaskSupervisor(backend, ExecutionPolicy(**FAST)).map(
                _double, items
            )
        assert supervised == serial


class TestBackendPrimitives:
    def test_submit_is_per_item(self):
        with ProcessPoolBackend(2) as backend:
            future = backend.submit(_double, 21)
            assert future.result(timeout=30) == 42

    def test_worker_pids_snapshot(self):
        backend = ProcessPoolBackend(2)
        assert backend.worker_pids() == ()  # lazy: nothing spawned yet
        backend.map(_double, [1])
        pids = backend.worker_pids()
        assert pids and all(isinstance(pid, int) for pid in pids)
        backend.shutdown()

    def test_rebuild_replaces_the_pool(self):
        backend = ProcessPoolBackend(2)
        backend.map(_double, [1])
        old = set(backend.worker_pids())
        backend.rebuild()
        assert backend._executor is None
        assert backend.map(_double, [2]) == [4]
        assert not (set(backend.worker_pids()) & old)
        backend.shutdown()

    def test_rebuild_before_first_use_is_a_noop(self):
        backend = ProcessPoolBackend(2)
        backend.rebuild()
        assert backend.map(_double, [3]) == [6]
        backend.shutdown()
