"""Integration: Terasort + PageRank co-located through ``run_mix``.

A two-job mix runs cold against a file-backed cache, then a fresh
``Experiment`` re-runs the same mix warm: the second pass must be served
entirely from the cache (one mix hit, zero misses anywhere) and the two
:class:`MixResult` records must agree bit for bit.  The saved cache file
must also keep the mix's entry disjoint from every single-job run key —
the ``mix/`` namespace — so co-location results can never shadow solo
results of the same workloads.
"""

import json

import pytest

from repro.pipeline import ClusterPlatform, Experiment, ResultCache
from repro.schedule.mix import MixJob
from repro.units import GB
from repro.workloads.pagerank import PageRankParameters, make_pagerank_workload
from repro.workloads.terasort import TerasortParameters, make_terasort_workload

NODES = 3
CORES = 8
ARRIVAL = 120.0


def _terasort():
    # ~1/100 the paper's dataset with task counts scaled down alongside,
    # so every per-task byte figure (and hence every request size the
    # profiler cross-checks against iostat) stays paper-shaped while the
    # mix simulates in a couple of seconds.
    return make_terasort_workload(
        TerasortParameters(
            num_records=100_000_000, total_bytes=9.3 * GB, num_reducers=4
        )
    )


def _pagerank():
    # Same uniform 1/50 scale-down: bytes per partition match the paper.
    return make_pagerank_workload(
        PageRankParameters(
            num_vertices=400_000,
            num_partitions=96,
            input_bytes=1.0 * GB,
            graph_rdd_bytes=8.4 * GB,
            ranks_bytes=0.008 * GB,
            iterations=3,
        )
    )


def _jobs():
    return [
        MixJob(spec=_terasort()),
        MixJob(spec=_pagerank(), arrival=ARRIVAL),
    ]


def _run(cache_path):
    experiment = Experiment(
        _terasort(), ClusterPlatform(), cache=ResultCache(cache_path)
    )
    result = experiment.run_mix(_jobs(), nodes=NODES, cores_per_node=CORES)
    return experiment, result


@pytest.fixture(scope="module")
def roundtrip(tmp_path_factory):
    """Cold run, then a warm re-run from a fresh process-like state."""
    path = tmp_path_factory.mktemp("mixcache") / "cache.json"
    cold_experiment, cold = _run(path)
    warm_experiment, warm = _run(path)
    return path, cold_experiment, cold, warm_experiment, warm


class TestColdRun:
    def test_interference_is_visible(self, roundtrip):
        _, _, cold, _, _ = roundtrip
        assert cold.policy == "fair"
        assert [job.name for job in cold.jobs] == ["Terasort", "PageRank"]
        for job in cold.jobs:
            assert job.slowdown >= 1.0 - 1e-9
            assert job.turnaround_seconds >= job.result.measured_seconds
        assert cold.makespan_seconds >= max(
            job.arrival + job.solo_seconds for job in cold.jobs
        )

    def test_result_is_json_ready(self, roundtrip):
        _, _, cold, _, _ = roundtrip
        payload = json.loads(json.dumps(cold.to_dict()))
        assert payload["nodes"] == NODES
        assert len(payload["jobs"]) == 2


class TestWarmRun:
    def test_rerun_is_bit_identical(self, roundtrip):
        _, _, cold, _, warm = roundtrip
        assert warm.to_dict() == cold.to_dict()

    def test_rerun_is_pure_cache(self, roundtrip):
        _, _, _, warm_experiment, _ = roundtrip
        cache = warm_experiment.cache
        assert cache.mix_stats.hits == 1
        for stats in (
            cache.measurement_stats,
            cache.prediction_stats,
            cache.report_stats,
            cache.mix_stats,
        ):
            assert stats.misses == 0


class TestCacheFile:
    def test_mix_entry_is_disjoint_from_solo_keys(self, roundtrip):
        path, *_ = roundtrip
        data = json.loads(path.read_text())
        mix_keys = set(data["mixes"])
        assert len(mix_keys) == 1
        assert all(key.startswith("mix/") for key in mix_keys)
        assert not mix_keys & set(data["measurements"])
        # Both solo baselines were simulated and cached alongside.
        solo_names = {
            entry["name"] for entry in data["measurements"].values()
        }
        assert {"Terasort", "PageRank"} <= solo_names

    def test_solo_runs_reuse_the_mixes_baselines(self, roundtrip):
        # An ordinary single-job experiment over the same cache file hits
        # the baseline the mix already computed — no re-simulation.
        path, *_ = roundtrip
        experiment = Experiment(
            _pagerank(), ClusterPlatform(), cache=ResultCache(path)
        )
        experiment.measure(NODES, CORES)
        assert experiment.cache.measurement_stats.hits == 1
        assert experiment.cache.measurement_stats.misses == 0
