"""Integration: the paper's GATK4 observations, end to end.

Covers the qualitative findings of Section III (Figs. 2-3, the 126-minute
shuffle analysis) and the quantitative accuracy claim of Section V-A
(Fig. 7: average error below the paper's quoted 6 %... we allow 10 %, the
paper's overall bound).
"""

import pytest

from repro.analysis.errors import ExpVsModel, average_error
from repro.cluster import HYBRID_CONFIGS, make_paper_cluster
from repro.workloads.runner import measure_workload


@pytest.fixture(scope="module")
def motivation_runs(gatk4_workload):
    """Fig. 2's setting: 3 slaves, P = 36, all four disk configurations."""
    runs = {}
    for config in HYBRID_CONFIGS:
        cluster = make_paper_cluster(3, config)
        runs[config.config_id] = measure_workload(cluster, 36, gatk4_workload)
    return runs


class TestFig2Observations:
    """Section III-A's three numbered observations."""

    def test_md_insensitive_to_hdfs_device(self, motivation_runs):
        # Observation 1: HDFS HDD->SSD gives no gain for MD (configs 3 vs 1
        # and 4 vs 2 differ only in the HDFS device).
        md_ssd_local = motivation_runs[1].stage("MD").makespan
        md_ssd_local_hdd_hdfs = motivation_runs[2].stage("MD").makespan
        assert md_ssd_local_hdd_hdfs == pytest.approx(md_ssd_local, rel=0.05)

    def test_sf_gains_from_hdfs_ssd(self, motivation_runs):
        # Observation 1: SF gains substantially from an SSD HDFS
        # (config 1 vs config 2: local fixed at SSD).
        sf_fast_hdfs = motivation_runs[1].stage("SF").makespan
        sf_slow_hdfs = motivation_runs[2].stage("SF").makespan
        assert sf_slow_hdfs > 1.5 * sf_fast_hdfs

    def test_local_device_dominates(self, motivation_runs):
        # Observation 3: Spark-local is much more I/O-sensitive than HDFS.
        total_by_config = {
            cid: run.total_seconds for cid, run in motivation_runs.items()
        }
        local_downgrade = total_by_config[3] - total_by_config[1]
        hdfs_downgrade = total_by_config[2] - total_by_config[1]
        assert local_downgrade > 3 * hdfs_downgrade

    def test_br_sf_dominate_on_hdd_local(self, motivation_runs):
        # Observation 2: with Local = HDD, BR and SF become the
        # time-consuming stages.
        run = motivation_runs[4]
        assert run.stage("BR").makespan > run.stage("MD").makespan
        assert run.stage("SF").makespan > run.stage("MD").makespan


class TestShuffleAnalysis:
    """Section III-C3: the 126-minute back-of-envelope, simulated."""

    def test_br_hdd_local_near_126_minutes(self, motivation_runs):
        minutes = motivation_runs[4].stage("BR").makespan / 60
        assert minutes == pytest.approx(127, rel=0.12)

    def test_sf_matches_br_on_hdd_local(self, motivation_runs):
        run = motivation_runs[4]
        assert run.stage("SF").makespan == pytest.approx(
            run.stage("BR").makespan, rel=0.1
        )

    def test_md_much_shorter_despite_equal_shuffle_bytes(self, motivation_runs):
        # Same 334 GB through the local disk, but at ~352 MB chunks instead
        # of ~28 KB reads.
        run = motivation_runs[4]
        assert run.stage("MD").makespan < 0.4 * run.stage("BR").makespan


class TestFig3CoreScaling:
    """Fig. 3: runtime vs P for 2SSD and 2HDD."""

    @pytest.fixture(scope="class")
    def scaling(self, gatk4_workload):
        results = {}
        for config in (HYBRID_CONFIGS[0], HYBRID_CONFIGS[3]):
            cluster = make_paper_cluster(3, config)
            for cores in (12, 24, 36):
                results[(config.shorthand, cores)] = measure_workload(
                    cluster, cores, gatk4_workload
                )
        return results

    def test_br_scales_on_ssd(self, scaling):
        t12 = scaling[("2SSD", 12)].stage("BR").makespan
        t36 = scaling[("2SSD", 36)].stage("BR").makespan
        assert t36 < 0.45 * t12  # near-linear scaling

    def test_br_flat_on_hdd(self, scaling):
        t12 = scaling[("2HDD", 12)].stage("BR").makespan
        t36 = scaling[("2HDD", 36)].stage("BR").makespan
        assert t36 == pytest.approx(t12, rel=0.1)

    def test_sf_flat_on_hdd(self, scaling):
        t12 = scaling[("2HDD", 12)].stage("SF").makespan
        t36 = scaling[("2HDD", 36)].stage("SF").makespan
        assert t36 == pytest.approx(t12, rel=0.1)

    def test_ssd_gains_more_from_cores_than_hdd(self, scaling):
        ssd_gain = (
            scaling[("2SSD", 12)].total_seconds
            / scaling[("2SSD", 36)].total_seconds
        )
        hdd_gain = (
            scaling[("2HDD", 12)].total_seconds
            / scaling[("2HDD", 36)].total_seconds
        )
        assert ssd_gain > hdd_gain


class TestFig7ModelAccuracy:
    """Fig. 7: model vs measurement on ten slaves at P = 6, 12, 24."""

    def test_average_error_within_paper_bound(
        self, gatk4_workload, gatk4_predictor
    ):
        points = []
        for config in (HYBRID_CONFIGS[0], HYBRID_CONFIGS[3]):
            cluster = make_paper_cluster(10, config)
            model = gatk4_predictor.model_for_cluster(cluster)
            for cores in (6, 12, 24):
                measured = measure_workload(cluster, cores, gatk4_workload)
                predicted = model.predict(10, cores)
                for stage in gatk4_workload.stages:
                    points.append(
                        ExpVsModel(
                            label=f"{config.shorthand}/{stage.name}@P={cores}",
                            measured=measured.stage(stage.name).makespan,
                            predicted=predicted.stage(stage.name).t_stage,
                        )
                    )
        assert average_error(points) < 0.10
