"""Integration: model accuracy for the five Section-V applications.

Each workload is profiled with the four-sample-run procedure on a 3-slave
cluster and validated against the simulator on the Section-V setting (ten
slaves) under 2SSD and 2HDD at P in {12, 36}.  The paper's headline claim
is "prediction error rate within 10%": we assert the per-application
*average* error stays below that (the paper's per-app averages are 5.3%,
8.4%, 5.2%, 3.6% and 3.9%).
"""

import pytest

from repro.analysis.errors import ExpVsModel, average_error
from repro.cluster import HYBRID_CONFIGS, make_paper_cluster
from repro.core import Predictor, Profiler
from repro.workloads import (
    make_logistic_regression_workload,
    make_pagerank_workload,
    make_svm_workload,
    make_terasort_workload,
    make_triangle_count_workload,
)
from repro.workloads.logistic_regression import LARGE_DATASET
from repro.workloads.runner import measure_workload

WORKLOAD_FACTORIES = {
    "lr_small": lambda: make_logistic_regression_workload(num_slaves=10),
    "lr_large": lambda: make_logistic_regression_workload(
        LARGE_DATASET, num_slaves=10
    ),
    "svm": make_svm_workload,
    "pagerank": make_pagerank_workload,
    "triangle_count": make_triangle_count_workload,
    "terasort": make_terasort_workload,
}


@pytest.fixture(scope="module", params=sorted(WORKLOAD_FACTORIES))
def validated(request):
    """Profile one workload and collect exp-vs-model points."""
    workload = WORKLOAD_FACTORIES[request.param]()
    predictor = Predictor(Profiler(workload, nodes=3).profile())
    points = []
    totals = {}
    for config in (HYBRID_CONFIGS[0], HYBRID_CONFIGS[3]):
        cluster = make_paper_cluster(10, config)
        model = predictor.model_for_cluster(cluster)
        for cores in (12, 36):
            measured = measure_workload(cluster, cores, workload)
            predicted = model.predict(10, cores)
            for stage in workload.stages:
                points.append(
                    ExpVsModel(
                        label=f"{config.shorthand}/{stage.name}@P={cores}",
                        measured=measured.stage(stage.name).makespan,
                        predicted=predicted.stage(stage.name).t_stage,
                    )
                )
            totals[(config.shorthand, cores)] = measured.total_seconds
    return request.param, workload, points, totals


class TestAccuracy:
    def test_average_error_within_10_percent(self, validated):
        name, _, points, _ = validated
        assert average_error(points) < 0.10, name

    def test_total_runtime_error_within_10_percent(self, validated):
        name, workload, points, totals = validated
        # Aggregate check on totals: weighted by stage times implicitly.
        for (config, cores), measured_total in totals.items():
            predicted_total = sum(
                p.predicted
                for p in points
                if p.label.startswith(f"{config}/") and p.label.endswith(f"P={cores}")
            )
            assert predicted_total == pytest.approx(measured_total, rel=0.15), (
                name, config, cores,
            )


class TestPaperRatios:
    """The HDD/SSD gaps the Section-V summary quotes (shape, not exactness)."""

    def test_lr_large_iteration_gap_near_7x(self):
        workload = make_logistic_regression_workload(LARGE_DATASET, num_slaves=10)
        ssd = measure_workload(
            make_paper_cluster(10, HYBRID_CONFIGS[0]), 36, workload
        ).stage("iteration").makespan
        hdd = measure_workload(
            make_paper_cluster(10, HYBRID_CONFIGS[3]), 36, workload
        ).stage("iteration").makespan
        assert hdd / ssd == pytest.approx(7.0, rel=0.2)

    def test_pagerank_iteration_gap_near_2x(self):
        workload = make_pagerank_workload()
        ssd = measure_workload(
            make_paper_cluster(10, HYBRID_CONFIGS[0]), 36, workload
        ).stage("iteration").makespan
        hdd = measure_workload(
            make_paper_cluster(10, HYBRID_CONFIGS[3]), 36, workload
        ).stage("iteration").makespan
        assert 1.8 < hdd / ssd < 3.0

    def test_triangle_count_gap_near_6x(self):
        workload = make_triangle_count_workload()
        groups = workload.parameters["phase_groups"]["computeTriangleCount"]
        ssd_run = measure_workload(
            make_paper_cluster(10, HYBRID_CONFIGS[0]), 36, workload
        )
        hdd_run = measure_workload(
            make_paper_cluster(10, HYBRID_CONFIGS[3]), 36, workload
        )
        ssd = sum(ssd_run.stage(name).makespan for name in groups)
        hdd = sum(hdd_run.stage(name).makespan for name in groups)
        assert 4.5 < hdd / ssd < 8.5

    def test_svm_subtract_gap(self):
        workload = make_svm_workload()
        groups = workload.parameters["phase_groups"]["subtract"]
        ssd_run = measure_workload(
            make_paper_cluster(10, HYBRID_CONFIGS[0]), 36, workload
        )
        hdd_run = measure_workload(
            make_paper_cluster(10, HYBRID_CONFIGS[3]), 36, workload
        )
        ssd = sum(ssd_run.stage(name).makespan for name in groups)
        hdd = sum(hdd_run.stage(name).makespan for name in groups)
        # Paper: 6.2x on the subtract phase.
        assert 4.0 < hdd / ssd < 9.0

    def test_iterations_identical_when_cached(self):
        # LR small and SVM iterate over in-memory RDDs: the device is
        # irrelevant there.
        for workload in (
            make_logistic_regression_workload(num_slaves=10),
            make_svm_workload(),
        ):
            ssd = measure_workload(
                make_paper_cluster(10, HYBRID_CONFIGS[0]), 36, workload
            ).stage("iteration").makespan
            hdd = measure_workload(
                make_paper_cluster(10, HYBRID_CONFIGS[3]), 36, workload
            ).stage("iteration").makespan
            assert hdd == pytest.approx(ssd, rel=0.01)
