"""Integration: real mini-applications on the functional RDD engine.

Each of the paper's application classes is exercised with *actual data*
through the engine: a GATK4-style MarkDuplicate grouping, logistic
regression that really learns, PageRank that really converges, an exact
triangle count, and a Terasort that really sorts.
"""

import math

import pytest

from repro.spark.context import DoppioContext
from repro.workloads.generators import (
    generate_genome_reads,
    generate_labelled_points,
    generate_edge_list,
    generate_terasort_records,
    generate_triangle_rich_graph,
)


@pytest.fixture()
def sc():
    return DoppioContext()


class TestMarkDuplicateStyle:
    """Fig. 1's core mechanism: group reads by alignment, mark duplicates."""

    def test_duplicates_marked(self, sc):
        reads = generate_genome_reads(2000, duplicate_fraction=0.3, seed=5)
        rdd = sc.parallelize(reads, 16).key_by(lambda read: (read[0], read[1]))
        grouped = rdd.group_by_key(8)

        def mark(pair):
            _, group = pair
            # First read in each alignment group is the original; the rest
            # are duplicates.
            return len(group) - 1

        duplicate_count = sum(grouped.map(mark).collect())
        positions = [(chrom, pos) for chrom, pos, _ in reads]
        expected = len(positions) - len(set(positions))
        assert duplicate_count == expected

    def test_union_rdd_reuse_like_br_sf(self, sc):
        # The markedReads UnionRDD is consumed by both BR and SF: two
        # actions over the same lineage must agree.
        reads = generate_genome_reads(500, seed=9)
        primary = sc.parallelize(reads, 4).filter(lambda r: r[1] % 2 == 0)
        non_primary = sc.parallelize(reads, 4).filter(lambda r: r[1] % 2 == 1)
        marked = primary.union(non_primary)
        assert marked.count() == 500
        assert len(marked.collect()) == 500


class TestLogisticRegression:
    def test_gradient_descent_learns(self, sc):
        lines = generate_labelled_points(1500, 5, seed=21)
        points = sc.parallelize(lines, 8).map(_parse_point).cache()
        weights = [0.0] * 5
        for _ in range(30):
            gradients = points.map(
                lambda point, w=tuple(weights): _gradient(point, w)
            ).reduce(lambda a, b: [x + y for x, y in zip(a, b)])
            weights = [w - 0.5 * g / 1500 for w, g in zip(weights, gradients)]
        accuracy = (
            points.filter(
                lambda point, w=tuple(weights): _predict(point[1], w) == point[0]
            ).count()
            / 1500
        )
        assert accuracy > 0.9


def _parse_point(line):
    parts = line.split()
    return (int(parts[0]), tuple(float(x) for x in parts[1:]))


def _sigmoid(z):
    return 1.0 / (1.0 + math.exp(-max(-30.0, min(30.0, z))))


def _gradient(point, weights):
    label, features = point
    margin = sum(w * x for w, x in zip(weights, features))
    error = _sigmoid(margin) - label
    return [error * x for x in features]


def _predict(features, weights):
    return 1 if _sigmoid(sum(w * x for w, x in zip(weights, features))) > 0.5 else 0


class TestPageRank:
    def test_converges_and_sums_to_n(self, sc):
        edges = generate_edge_list(60, 600, seed=3)
        links = sc.parallelize(edges, 6).group_by_key(6).cache()
        num_vertices = 60
        ranks = links.map_values(lambda _: 1.0)
        for _ in range(15):
            contributions = links.union(ranks).group_by_key(6).flat_map(
                _spread_rank
            )
            ranks = contributions.reduce_by_key(lambda a, b: a + b, 6).map_values(
                lambda contrib: 0.15 + 0.85 * contrib
            )
        final = dict(ranks.collect())
        # Dangling-free graphs conserve total rank approximately.
        assert sum(final.values()) == pytest.approx(len(final), rel=0.3)
        assert all(rank > 0 for rank in final.values())

    def test_star_graph_center_ranks_highest(self, sc):
        # Every leaf points at vertex 0.
        edges = [(leaf, 0) for leaf in range(1, 21)]
        links = sc.parallelize(edges, 4).group_by_key(4).cache()
        ranks = links.map_values(lambda _: 1.0).union(
            sc.parallelize([(0, 1.0)], 1)
        )
        for _ in range(5):
            contributions = links.union(ranks).group_by_key(4).flat_map(
                _spread_rank
            )
            ranks = contributions.reduce_by_key(lambda a, b: a + b, 4).map_values(
                lambda contrib: 0.15 + 0.85 * contrib
            )
        final = dict(ranks.collect())
        assert final[0] == max(final.values())


def _spread_rank(pair):
    """Merge (vertex, [targets... , rank]) groups into contributions."""
    vertex, values = pair
    targets = []
    rank = 0.0
    for value in values:
        if isinstance(value, list):
            targets.extend(value)
        else:
            rank += value
    if not targets:
        return [(vertex, 0.0)]
    share = rank / len(targets)
    return [(target, share) for target in targets] + [(vertex, 0.0)]


class TestTriangleCount:
    def test_exact_count_on_planted_graph(self, sc):
        num_triangles = 25
        edges = generate_triangle_rich_graph(num_triangles, seed=2)
        assert _count_triangles(sc, edges) == num_triangles

    def test_random_graph_matches_reference(self, sc):
        edges = generate_edge_list(30, 150, seed=8)
        expected = _reference_triangles(edges)
        assert _count_triangles(sc, edges) == expected


def _canonical_edges(sc, edges):
    return (
        sc.parallelize(edges, 6)
        .map(lambda e: (min(e), max(e)))
        .filter(lambda e: e[0] != e[1])
        .map(lambda e: (e, None))
        .reduce_by_key(lambda a, b: a, 6)
        .map(lambda kv: kv[0])
    )


def _count_triangles(sc, edges):
    canonical = _canonical_edges(sc, edges).collect()
    edge_set = set(canonical)
    neighbours = {}
    for a, b in canonical:
        neighbours.setdefault(a, set()).add(b)
        neighbours.setdefault(b, set()).add(a)
    adjacency = sc.parallelize(sorted(neighbours.items()), 6)
    counts = adjacency.map(
        lambda pair: sum(
            1
            for u in pair[1]
            for v in pair[1]
            if u < v and (min(u, v), max(u, v)) in edge_set
        )
    )
    return sum(counts.collect()) // 3


def _reference_triangles(edges):
    undirected = {(min(e), max(e)) for e in edges if e[0] != e[1]}
    neighbours = {}
    for a, b in undirected:
        neighbours.setdefault(a, set()).add(b)
        neighbours.setdefault(b, set()).add(a)
    count = 0
    for a, b in undirected:
        count += len(neighbours[a] & neighbours[b])
    return count // 3


class TestTerasort:
    def test_output_globally_sorted(self, sc):
        records = generate_terasort_records(3000, seed=4)
        sorted_rdd = sc.parallelize(records, 12).sort_by_key(8)
        result = sorted_rdd.collect()
        keys = [key for key, _ in result]
        assert keys == sorted(key for key, _ in records)
        assert len(result) == 3000

    def test_range_partitions_are_ordered(self, sc):
        records = generate_terasort_records(2000, seed=6)
        sorted_rdd = sc.parallelize(records, 8).sort_by_key(5)
        partitions = sc.runtime.run_job(sorted_rdd)
        last_key = None
        for partition in partitions:
            for key, _ in partition:
                if last_key is not None:
                    assert key >= last_key
                last_key = key
