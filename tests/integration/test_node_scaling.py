"""Integration: predictions generalize across cluster sizes.

The paper profiles on N = 3 and evaluates on N = 10; related work (Ernest
[8]) frames node-count extrapolation as the core prediction problem.  The
model's N-dependence (every term carries 1/N) should hold from 2 to 20
slaves without re-profiling.
"""

import pytest

from repro.analysis.errors import ExpVsModel, average_error
from repro.cluster import HYBRID_CONFIGS, make_paper_cluster
from repro.workloads.runner import measure_workload

NODE_SWEEP = (2, 5, 10, 20)


@pytest.fixture(scope="module", params=[0, 3], ids=["2SSD", "2HDD"])
def node_sweep_points(request, gatk4_workload, gatk4_predictor):
    config = HYBRID_CONFIGS[request.param]
    points = []
    for nodes in NODE_SWEEP:
        cluster = make_paper_cluster(nodes, config)
        measured = measure_workload(cluster, 24, gatk4_workload)
        predicted = gatk4_predictor.predict(cluster, 24)
        points.append(
            ExpVsModel(
                label=f"{config.shorthand}@N={nodes}",
                measured=measured.total_seconds,
                predicted=predicted.t_app,
            )
        )
    return points


class TestNodeScaling:
    def test_error_bounded_across_cluster_sizes(self, node_sweep_points):
        assert average_error(node_sweep_points) < 0.10

    def test_runtime_decreases_with_nodes(self, node_sweep_points):
        measured = [p.measured for p in node_sweep_points]
        assert all(a > b for a, b in zip(measured, measured[1:]))

    def test_prediction_tracks_the_1_over_n_shape(self, node_sweep_points):
        # Doubling the cluster from 5 to 10 slaves should roughly halve
        # the runtime in both the measurement and the model.
        by_nodes = {
            int(p.label.split("N=")[1]): p for p in node_sweep_points
        }
        measured_gain = by_nodes[5].measured / by_nodes[10].measured
        predicted_gain = by_nodes[5].predicted / by_nodes[10].predicted
        assert 1.6 < measured_gain < 2.2
        assert predicted_gain == pytest.approx(measured_gain, rel=0.12)
