"""Integration: the Section-VI cloud cost-optimization case study."""

import pytest

from repro.cloud import (
    CostOptimizer,
    make_persistent_disk,
    r1_spark_recommendation,
    r2_cloudera_recommendation,
)
from repro.analysis.sweep import sweep_local_disk_sizes


@pytest.fixture(scope="module")
def optimizer(gatk4_predictor, gatk4_workload):
    hdfs_gb, local_gb = CostOptimizer.capacity_requirements(
        gatk4_workload, num_workers=10
    )
    return CostOptimizer(
        gatk4_predictor, num_workers=10, min_hdfs_gb=hdfs_gb, min_local_gb=local_gb
    )


@pytest.fixture(scope="module")
def search(optimizer):
    return optimizer.grid_search(vcpu_grid=(4, 8, 16, 32))


class TestCostSavings:
    """The headline: 38% / 57% cheaper than R1 / R2 recommendations."""

    def test_savings_vs_r1_and_r2(self, optimizer, search):
        r1 = optimizer.evaluate(r1_spark_recommendation())
        r2 = optimizer.evaluate(r2_cloudera_recommendation())
        assert search.savings_versus(r1) > 0.25
        assert search.savings_versus(r2) > 0.45

    def test_r2_more_expensive_than_r1(self, optimizer):
        r1 = optimizer.evaluate(r1_spark_recommendation())
        r2 = optimizer.evaluate(r2_cloudera_recommendation())
        assert r2.cost_dollars > r1.cost_dollars

    def test_optimum_uses_small_fast_local_disk(self, search):
        # Fig. 15's conclusion: a small pd-ssd Spark-local disk plus a
        # modest pd-standard HDFS disk is cost-optimal.
        best = search.best.config
        assert best.local_disk_kind == "pd-ssd"
        assert best.local_disk_gb <= 500
        assert best.hdfs_disk_kind == "pd-standard"

    def test_ssd_local_beats_hdd_local_optimum(self, optimizer):
        # Fig. 15: the SSD-local optimum is cheaper than the HDD-local one
        # (the paper finds $3.75 vs $4.12, a ~1.1x gap).
        hdd_only = optimizer.grid_search(
            vcpu_grid=(8, 16), disk_kinds=("pd-standard",)
        )
        mixed = optimizer.grid_search(vcpu_grid=(8, 16))
        assert mixed.best.cost_dollars < hdd_only.best.cost_dollars
        assert mixed.best.cost_dollars > 0.7 * hdd_only.best.cost_dollars

    def test_costs_in_paper_ballpark(self, optimizer, search):
        # Absolute dollars depend on the substrate, but the paper's
        # single-digit-dollars-per-genome scale should hold.
        r2 = optimizer.evaluate(r2_cloudera_recommendation())
        assert 1.0 < search.best.cost_dollars < 6.0
        assert 4.0 < r2.cost_dollars < 12.0


class TestFig14RuntimeVsDiskSize:
    def test_runtime_monotone_then_flat(self, gatk4_predictor):
        series = sweep_local_disk_sizes(
            gatk4_predictor,
            sizes_gb=[200, 500, 1000, 2000, 4000, 6000],
            num_workers=10,
            cores_per_node=16,
        )
        runtimes = [seconds for _, seconds in series]
        assert all(a >= b - 1e-6 for a, b in zip(runtimes, runtimes[1:]))
        assert runtimes[-1] == pytest.approx(runtimes[-2], rel=0.02)

    def test_model_matches_simulated_cloud_runs(
        self, gatk4_predictor, gatk4_workload
    ):
        """Fig. 14's validation: predictions vs 'measured' runs, <10% error.

        The paper verifies on real Google Cloud; we verify against the
        simulator running on virtual-disk device models.
        """
        from repro.cluster.cluster import Cluster
        from repro.cluster.node import Node
        from repro.units import GB
        from repro.workloads.runner import measure_workload

        errors = []
        for local_gb in (500, 2000):
            slaves = [
                Node(
                    name=f"w{i}",
                    num_cores=16,
                    ram_bytes=60 * GB,
                    hdfs_device=make_persistent_disk(
                        "pd-standard", 1000, name=f"w{i}-hdfs"
                    ),
                    local_device=make_persistent_disk(
                        "pd-standard", local_gb, name=f"w{i}-local"
                    ),
                )
                for i in range(10)
            ]
            cluster = Cluster(slaves=slaves)
            measured = measure_workload(cluster, 16, gatk4_workload).total_seconds
            predicted = gatk4_predictor.predict_runtime(cluster, 16)
            errors.append(abs(predicted - measured) / measured)
        assert sum(errors) / len(errors) < 0.10


class TestCoordinateDescentAgreesWithGrid:
    def test_hdd_descent_near_grid_optimum(self, optimizer):
        start = optimizer.make_config(16, "pd-standard", 4000, "pd-standard", 4000)
        descent = optimizer.coordinate_descent(start)
        grid = optimizer.grid_search(vcpu_grid=(4, 8, 16, 32),
                                     disk_kinds=("pd-standard",))
        assert descent.best.cost_dollars <= grid.best.cost_dollars * 1.3
