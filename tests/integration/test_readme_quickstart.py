"""Integration: the README's quickstart snippet works as documented."""

import pytest


class TestReadmeQuickstart:
    def test_quickstart_snippet(self):
        # Verbatim from README.md (imports consolidated).
        from repro import (
            HYBRID_CONFIGS,
            Predictor,
            Profiler,
            make_gatk4_workload,
            make_paper_cluster,
            measure_workload,
        )

        workload = make_gatk4_workload()
        report = Profiler(workload, nodes=3).profile()
        predictor = Predictor(report)

        cluster = make_paper_cluster(10, HYBRID_CONFIGS[0])
        predicted = predictor.predict_runtime(cluster, cores_per_node=36)
        measured = measure_workload(cluster, 36, workload).total_seconds

        assert predicted > 0
        assert measured == pytest.approx(predicted, rel=0.10)

    def test_module_docstring_quickstart(self):
        # The repro package docstring promises the same flow.
        import repro

        assert "Profiler" in repro.__doc__
        for name in repro.__all__:
            assert hasattr(repro, name), name
