"""Integration: functional RDD programs round-trip through the pipeline.

The paper's promise is that profiling a *real* (small) run yields a spec
that models like a hand-written one.  Here a mini-Terasort and a
mini-PageRank actually execute on the functional engine; the recorded
stage profiles are turned into workload specs via :class:`RddSource`
(``profiles_to_workload``) and driven through the same
:class:`Experiment` as a hand-written spec of the same job — and the
derived channel byte totals, shuffle-read request sizes, and resulting
exp/model numbers must match the hand-written ones exactly.
"""

import pytest

from repro.cluster import HYBRID_CONFIGS
from repro.pipeline import Experiment, RddSource, ResultCache, SpecSource
from repro.spark.context import DoppioContext
from repro.spark.partition import estimate_bytes
from repro.spark.shuffle import shuffle_read_request_size
from repro.workloads.base import ChannelSpec, StageSpec, TaskGroupSpec, WorkloadSpec
from repro.workloads.generators import generate_edge_list, generate_terasort_records

NODES = 3
CORES = 8

#: Compute time stamped onto the recorded profiles (the functional engine
#: measures bytes, not wall time; the paper takes compute from sample runs).
MAP_COMPUTE = 0.05
REDUCE_COMPUTE = 0.02


def _shuffle_stage_pair(name, map_name, map_tasks, reduce_name, reduce_tasks,
                        shuffle_bytes, num_mappers, num_reducers):
    """Hand-written spec of one map/reduce shuffle with known geometry."""
    return WorkloadSpec(
        name=name,
        stages=(
            StageSpec(
                name=map_name,
                groups=(
                    TaskGroupSpec(
                        name="tasks",
                        count=map_tasks,
                        compute_seconds=MAP_COMPUTE,
                        write_channels=(
                            ChannelSpec(
                                kind="shuffle_write",
                                bytes_per_task=shuffle_bytes / map_tasks,
                                request_size=shuffle_bytes / map_tasks,
                            ),
                        ),
                    ),
                ),
            ),
            StageSpec(
                name=reduce_name,
                groups=(
                    TaskGroupSpec(
                        name="tasks",
                        count=reduce_tasks,
                        read_channels=(
                            ChannelSpec(
                                kind="shuffle_read",
                                bytes_per_task=shuffle_bytes / reduce_tasks,
                                request_size=shuffle_read_request_size(
                                    shuffle_bytes, num_mappers, num_reducers
                                ),
                            ),
                        ),
                        compute_seconds=REDUCE_COMPUTE,
                    ),
                ),
            ),
        ),
    )


class TestTerasortRoundTrip:
    """400 records, 8 mappers, 4 range-partitioned reducers."""

    @pytest.fixture(scope="class")
    def executed(self):
        records = generate_terasort_records(400, seed=7)
        sc = DoppioContext()
        output = sc.parallelize(records, 8).sort_by_key(4).collect()
        return records, sc, output

    @pytest.fixture(scope="class")
    def profiles(self, executed):
        _, sc, _ = executed
        # Drop sortByKey's range-sampling pass: it moves no bytes and the
        # paper's Terasort model is the two shuffle stages.
        profiles = sc.stage_profiles[1:]
        assert len(profiles) == 2
        profiles[0].compute_seconds_per_task = MAP_COMPUTE
        profiles[1].compute_seconds_per_task = REDUCE_COMPUTE
        return profiles

    def test_really_sorts(self, executed):
        records, _, output = executed
        assert output == sorted(records)

    def test_recorded_geometry(self, executed, profiles):
        records, _, _ = executed
        total = estimate_bytes(records)
        map_stage, reduce_stage = profiles
        assert map_stage.num_tasks == 8
        assert map_stage.shuffle_write_bytes == total
        assert reduce_stage.num_tasks == 4
        assert reduce_stage.shuffle_read_bytes == total
        # The (D/R)/M rule, from the engine's own shuffle bookkeeping.
        assert reduce_stage.extras["shuffle_read_request_size"] == (
            shuffle_read_request_size(total, 8, 4)
        )

    def test_derived_spec_matches_hand_written(self, executed, profiles):
        records, _, _ = executed
        source = RddSource("mini-terasort", profiles)
        hand = _shuffle_stage_pair(
            "mini-terasort",
            profiles[0].name, 8, profiles[1].name, 4,
            shuffle_bytes=estimate_bytes(records),
            num_mappers=8, num_reducers=4,
        )
        assert source.spec.stages == hand.stages

    def test_experiment_numbers_match_hand_written(self, executed, profiles):
        records, _, _ = executed
        hand = _shuffle_stage_pair(
            "mini-terasort",
            profiles[0].name, 8, profiles[1].name, 4,
            shuffle_bytes=estimate_bytes(records),
            num_mappers=8, num_reducers=4,
        )
        derived_run = Experiment(
            RddSource("mini-terasort", profiles), HYBRID_CONFIGS[0]
        ).run(NODES, CORES)
        hand_run = Experiment(SpecSource(hand), HYBRID_CONFIGS[0]).run(
            NODES, CORES
        )
        assert derived_run.measured_seconds == hand_run.measured_seconds
        assert derived_run.predicted_seconds == hand_run.predicted_seconds
        for ours, theirs in zip(derived_run.stages, hand_run.stages):
            assert ours.measured_seconds == theirs.measured_seconds
            assert ours.predicted_seconds == theirs.predicted_seconds
            assert ours.bottleneck == theirs.bottleneck


class TestPageRankRoundTrip:
    """First PageRank iteration: per-vertex rank mass via reduceByKey."""

    @pytest.fixture(scope="class")
    def executed(self):
        edges = generate_edge_list(40, 300, seed=3)
        sc = DoppioContext()
        ranks = (
            sc.parallelize(edges, 6)
            .map(lambda edge: (edge[1], 1.0))
            .reduce_by_key(lambda a, b: a + b, 4)
        )
        return edges, sc, dict(ranks.collect())

    @pytest.fixture(scope="class")
    def expected_shuffle_bytes(self, executed):
        # The engine combines on the reduce side, so the shuffle moves one
        # (vertex, 1.0) contribution per edge — hand-computable.
        edges, _, _ = executed
        return estimate_bytes([(dst, 1.0) for _, dst in edges])

    @pytest.fixture(scope="class")
    def profiles(self, executed):
        _, sc, _ = executed
        profiles = sc.stage_profiles
        assert len(profiles) == 2
        profiles[0].compute_seconds_per_task = MAP_COMPUTE
        profiles[1].compute_seconds_per_task = REDUCE_COMPUTE
        return profiles

    def test_first_iteration_is_the_in_degree(self, executed):
        edges, _, ranks = executed
        expected: dict[int, float] = {}
        for _, dst in edges:
            expected[dst] = expected.get(dst, 0.0) + 1.0
        assert ranks == expected

    def test_recorded_geometry(self, profiles, expected_shuffle_bytes):
        map_stage, reduce_stage = profiles
        assert map_stage.num_tasks == 6
        assert map_stage.shuffle_write_bytes == expected_shuffle_bytes
        assert reduce_stage.num_tasks == 4
        assert reduce_stage.shuffle_read_bytes == expected_shuffle_bytes
        assert reduce_stage.extras["shuffle_read_request_size"] == (
            shuffle_read_request_size(expected_shuffle_bytes, 6, 4)
        )

    def test_derived_spec_matches_hand_written(
        self, profiles, expected_shuffle_bytes
    ):
        source = RddSource("mini-pagerank", profiles)
        hand = _shuffle_stage_pair(
            "mini-pagerank",
            profiles[0].name, 6, profiles[1].name, 4,
            shuffle_bytes=expected_shuffle_bytes,
            num_mappers=6, num_reducers=4,
        )
        assert source.spec.stages == hand.stages

    def test_experiment_numbers_match_hand_written(
        self, profiles, expected_shuffle_bytes
    ):
        hand = _shuffle_stage_pair(
            "mini-pagerank",
            profiles[0].name, 6, profiles[1].name, 4,
            shuffle_bytes=expected_shuffle_bytes,
            num_mappers=6, num_reducers=4,
        )
        cache = ResultCache()
        derived_run = Experiment(
            RddSource("mini-pagerank", profiles), HYBRID_CONFIGS[3],
            cache=cache,
        ).run(NODES, CORES)
        hand_run = Experiment(
            SpecSource(hand), HYBRID_CONFIGS[3], cache=cache
        ).run(NODES, CORES)
        assert derived_run.measured_seconds == hand_run.measured_seconds
        assert derived_run.predicted_seconds == hand_run.predicted_seconds
        # Identical stage content but distinct descriptions: the cache
        # must treat the two specs as different sources (no collisions).
        assert cache.measurement_stats.hits == 0
