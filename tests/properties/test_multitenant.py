"""Multi-tenant invariants over randomized K-job mixes.

Each test draws a bounded random mix (see ``strategies.mix_jobs_lists``:
K in [1, 4] jobs with staggered arrivals and volume scales), runs the
real :class:`~repro.schedule.mix.MixEngine`, and asserts one invariant
from :mod:`repro.invariants`.  The four sweeps together cover 510
derandomized examples:

- **work conservation per job** — contention reshapes every job's
  schedule but never its bytes;
- **interference dominance** — no job finishes faster in a mix than it
  runs alone (within :data:`INTERFERENCE_REL_TOL`, see the rationale in
  :mod:`repro.invariants.checks`);
- **K = 1 bit-identity** — a one-job mix through the pipeline IS the
  existing single-job run, bit for bit (the ``Experiment`` delegates to
  the solo path, sharing its cache entry);
- **arrival-order invariance** — permuting the submitted job list never
  changes the schedule, under either policy (canonicalization).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import HYBRID_CONFIGS, make_paper_cluster
from repro.invariants import (
    check_interference_dominance,
    check_measurements_identical,
    check_mix_conservation,
)
from repro.pipeline import ClusterPlatform, Experiment
from repro.schedule.mix import MixJob, canonical_jobs, measure_mix
from repro.workloads.base import scale_workload_volume
from repro.workloads.runner import measure_workload

from tests.properties.strategies import (
    _ARRIVALS,
    _VOLUME_SCALES,
    PROPERTY_SETTINGS,
    mix_jobs_lists,
    mix_policies,
    workload_specs,
)

nodes_axis = st.integers(min_value=1, max_value=3)
cores_axis = st.sampled_from((1, 2, 4))


def _cluster(nodes: int) -> object:
    # Fresh cluster per run: mixes must not depend on device or registry
    # state left behind by a previous simulation.
    return make_paper_cluster(nodes, HYBRID_CONFIGS[0])


@given(jobs=mix_jobs_lists(), policy=mix_policies, nodes=nodes_axis, cores=cores_axis)
@settings(max_examples=160, **PROPERTY_SETTINGS)
def test_mix_conserves_every_jobs_bytes(jobs, policy, nodes, cores):
    # Cross-job contention stretches schedules but moves no extra data:
    # each job's per-stage byte totals must match its scaled spec.
    mix = measure_mix(_cluster(nodes), cores, jobs, policy=policy)
    violations = check_mix_conservation(jobs, mix)
    assert not violations, "\n".join(map(str, violations))


@given(
    jobs=mix_jobs_lists(max_jobs=3),
    policy=mix_policies,
    nodes=nodes_axis,
    cores=cores_axis,
)
@settings(max_examples=120, **PROPERTY_SETTINGS)
def test_each_job_runs_no_faster_in_a_mix(jobs, policy, nodes, cores):
    # Sharing disks and NICs can only hurt: every job's mixed runtime is
    # at least its solo runtime, its turnaround covers its runtime, and
    # no job outlives the mix makespan.
    mix = measure_mix(_cluster(nodes), cores, jobs, policy=policy)
    solos = {
        name: measure_workload(
            _cluster(nodes),
            cores,
            scale_workload_volume(job.spec, job.volume_scale),
        )
        for name, job in canonical_jobs(jobs)
    }
    violations = check_interference_dominance(mix, solos)
    assert not violations, "\n".join(map(str, violations))


@given(
    spec=workload_specs(),
    arrival=st.sampled_from(_ARRIVALS),
    scale=st.sampled_from(_VOLUME_SCALES),
    policy=mix_policies,
    nodes=nodes_axis,
    cores=cores_axis,
)
@settings(max_examples=110, **PROPERTY_SETTINGS)
def test_single_job_mix_is_the_solo_run_bit_for_bit(
    spec, arrival, scale, policy, nodes, cores
):
    # A mix of one is not a new code path: the pipeline delegates K = 1
    # to the existing single-job run, so the measurement is the SAME
    # cache entry an equivalent solo experiment produces.
    platform = ClusterPlatform()
    experiment = Experiment(spec, platform)
    mix = experiment.measure_mix(
        [MixJob(spec=spec, arrival=arrival, volume_scale=scale)],
        policy=policy,
        nodes=nodes,
        cores_per_node=cores,
    )
    solo = Experiment(
        scale_workload_volume(spec, scale), platform, cache=experiment.cache
    ).measure(nodes, cores)
    (timeline,) = mix.jobs
    violations = check_measurements_identical(timeline.measurement, solo, spec.name)
    assert not violations, "\n".join(map(str, violations))
    assert timeline.measurement == solo
    assert mix.makespan == arrival + solo.total_seconds


@given(
    jobs=mix_jobs_lists(),
    policy=mix_policies,
    nodes=nodes_axis,
    cores=cores_axis,
    data=st.data(),
)
@settings(max_examples=120, **PROPERTY_SETTINGS)
def test_submission_order_never_changes_the_schedule(jobs, policy, nodes, cores, data):
    # Jobs are canonicalized by (arrival, name) before anything runs, so
    # any permutation of the submitted list yields a bit-identical
    # MixMeasurement — timelines, makespan, device utilizations, all.
    shuffled = data.draw(st.permutations(jobs))
    first = measure_mix(_cluster(nodes), cores, jobs, policy=policy)
    second = measure_mix(_cluster(nodes), cores, shuffled, policy=policy)
    assert first == second
