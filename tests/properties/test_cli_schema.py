"""Schema regression tests for ``repro simulate --json``.

Downstream tooling parses this payload, so the key sets, units, and
label vocabularies are contracts: the tests assert them *exactly* to
catch accidental renames or driftingly typed fields.
"""

from __future__ import annotations

import io
import json
from contextlib import redirect_stdout
from pathlib import Path

import pytest

from repro.cli import main
from repro.workloads.base import CHANNEL_KINDS

EXAMPLE_PLAN = (
    Path(__file__).parents[2] / "examples" / "fault_plans" / "straggler_throttle.json"
)

TOP_LEVEL_KEYS = {
    "workload",
    "slaves",
    "cores_per_node",
    "hdfs",
    "local",
    "network_gbps",
    "fault_plan",
    "resilience_policy",
    "total_seconds",
    "stages",
    "device_utilizations",
    "iostat",
}
STAGE_KEYS = {
    "name",
    "num_tasks",
    "makespan_seconds",
    "core_utilization",
    "bottleneck",
}
FAULTED_STAGE_KEYS = STAGE_KEYS | {"clean_makespan_seconds", "impact_fraction"}
#: With mitigations armed on a faulted run, both baselines appear.
MITIGATED_TOP_LEVEL_KEYS = TOP_LEVEL_KEYS | {
    "unmitigated_total_seconds",
    "resilience_summary",
}
MITIGATED_STAGE_KEYS = FAULTED_STAGE_KEYS | {
    "unmitigated_makespan_seconds",
    "resilience",
}
RESILIENCE_SUMMARY_KEYS = {
    "attempts",
    "speculative_launched",
    "speculative_wins",
    "task_retries",
    "stage_reattempts",
    "backoff_seconds",
    "blacklisted",
}

#: Every label a stage bottleneck may carry: the core pool, or one
#: device role with a direction.
BOTTLENECK_LABELS = {"cores"} | {
    f"{role}:{direction}"
    for role in set(CHANNEL_KINDS.values())
    for direction in ("read", "write")
}


def _simulate_json(*extra):
    out = io.StringIO()
    with redirect_stdout(out):
        code = main(["simulate", "terasort", "--slaves", "2", "--cores", "4",
                     "--json", *extra])
    assert code == 0
    return json.loads(out.getvalue())


@pytest.fixture(scope="module")
def clean_payload():
    return _simulate_json()


@pytest.fixture(scope="module")
def faulted_payload():
    return _simulate_json("--fault-plan", str(EXAMPLE_PLAN))


@pytest.fixture(scope="module")
def mitigated_payload():
    return _simulate_json(
        "--fault-plan", str(EXAMPLE_PLAN), "--speculation", "--blacklist"
    )


class TestCleanSchema:
    def test_exact_key_sets(self, clean_payload):
        payload = clean_payload
        assert set(payload) == TOP_LEVEL_KEYS
        assert payload["stages"]
        for stage in payload["stages"]:
            assert set(stage) == STAGE_KEYS

    def test_units_and_ranges(self, clean_payload):
        payload = clean_payload
        assert payload["fault_plan"] is None
        assert payload["total_seconds"] > 0.0
        assert payload["total_seconds"] >= max(
            stage["makespan_seconds"] for stage in payload["stages"]
        )
        for stage in payload["stages"]:
            assert stage["num_tasks"] > 0
            assert 0.0 <= stage["core_utilization"] <= 1.0

    def test_bottleneck_labels_come_from_the_fixed_vocabulary(self, clean_payload):
        for stage in clean_payload["stages"]:
            assert stage["bottleneck"] in BOTTLENECK_LABELS

    def test_device_tables_are_labelled_per_direction(self, clean_payload):
        payload = clean_payload
        for entry in payload["device_utilizations"]:
            assert set(entry) == {"resource", "direction", "busy_fraction"}
            assert entry["direction"] in ("read", "write")
            assert 0.0 <= entry["busy_fraction"] <= 1.0
        for entry in payload["iostat"]:
            assert set(entry) == {
                "device", "direction", "requests", "avg_request_bytes",
            }
            assert entry["requests"] > 0
            assert entry["avg_request_bytes"] > 0.0


class TestFaultedSchema:
    def test_documented_example_plan_runs_end_to_end(self, faulted_payload):
        # The plan shipped under examples/ is the one docs/TESTING.md
        # walks through — it must keep loading and showing impact.
        payload = faulted_payload
        assert payload["fault_plan"] == "straggler-plus-disk-throttle"
        for stage in payload["stages"]:
            assert set(stage) == FAULTED_STAGE_KEYS
            assert stage["makespan_seconds"] >= stage["clean_makespan_seconds"]
            assert stage["impact_fraction"] >= 0.0
        # A 2.5x straggler on one of two nodes must visibly hurt.
        assert any(stage["impact_fraction"] > 0.1 for stage in payload["stages"])

    def test_faulted_totals_dominate_the_clean_run(
        self, clean_payload, faulted_payload
    ):
        clean, faulted = clean_payload, faulted_payload
        assert faulted["total_seconds"] >= clean["total_seconds"]
        assert sum(s["clean_makespan_seconds"] for s in faulted["stages"]) == (
            clean["total_seconds"]
        )


class TestMitigatedSchema:
    def test_exact_key_sets(self, mitigated_payload):
        payload = mitigated_payload
        assert set(payload) == MITIGATED_TOP_LEVEL_KEYS
        assert set(payload["resilience_summary"]) == RESILIENCE_SUMMARY_KEYS
        for stage in payload["stages"]:
            assert set(stage) == MITIGATED_STAGE_KEYS
            assert set(stage["resilience"]) == RESILIENCE_SUMMARY_KEYS

    def test_policy_echoes_the_flags(self, mitigated_payload):
        policy = mitigated_payload["resilience_policy"]
        assert policy["speculation"] is not None
        assert policy["blacklist"] is not None
        assert policy["retry"]["max_task_attempts"] >= 1

    def test_mitigation_recovers_makespan(
        self, clean_payload, mitigated_payload
    ):
        # The shipped straggler plan is the acceptance scenario: armed
        # speculation + blacklisting must beat the unmitigated run while
        # staying no faster than the clean one.
        payload = mitigated_payload
        assert payload["total_seconds"] < payload["unmitigated_total_seconds"]
        assert payload["total_seconds"] >= clean_payload["total_seconds"]
        summary = payload["resilience_summary"]
        assert summary["attempts"] > 0
        assert summary["speculative_wins"] <= summary["speculative_launched"]
