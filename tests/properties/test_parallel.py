"""PR-5 equivalence properties: parallelism and pruning change nothing.

Two guarantees back every ``workers=``/``prune=`` knob in the pipeline:

- **Bit-identity** — ``Experiment.run_grid(workers=k)`` returns records
  byte-for-byte equal to the serial sweep, for any worker count.  The
  parallel path only *warms the cache* (workers ship content-addressed
  shards home); every record is then composed in-process by the same
  serial code, so equality is structural, and this test pins it.
- **Exact pruning** — ``CostOptimizer.grid_search(prune=True)`` returns
  the same ``best`` as the exhaustive search.  The branch-and-bound cut
  uses an admissible lower bound (:mod:`repro.cloud.bounds`), so the
  first global optimum in grid order can never be discarded.

Both are checked across randomized workloads, shapes, and price grids —
not just the paper's fixtures.
"""

from __future__ import annotations

import json

from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.cloud.optimizer import CostOptimizer
from repro.core import Predictor, Profiler
from repro.errors import ProfilingError
from repro.parallel import ExecutionPolicy
from repro.pipeline.cache import ResultCache
from repro.pipeline.experiment import Experiment
from repro.pipeline.platforms import ClusterPlatform
from repro.pipeline.sources import ResolvedSource

from .strategies import PROPERTY_SETTINGS, workload_specs


#: Random specs may be I/O-bound in the sample runs, which the paper's
#: calibration rejects by design (negative ``t_avg``, Section VI-1) —
#: those draws are rejected, not failures, and rejection is common
#: enough to trip the filter health check.
EQUIV_SETTINGS = dict(
    suppress_health_check=(HealthCheck.filter_too_much, HealthCheck.too_slow),
    **PROPERTY_SETTINGS,
)


def _has_work(spec) -> bool:
    # A draw can be all-zero (no bytes, no compute): it "runs" in 0.0 s,
    # which record serialization rejects (relative error undefined).
    return any(
        group.compute_seconds > 0
        or any(
            channel.bytes_per_task > 0
            for channel in (*group.read_channels, *group.write_channels)
        )
        for stage in spec.stages
        for group in stage.groups
    )


def _profile(spec, nodes=2):
    assume(_has_work(spec))
    try:
        return Profiler(spec, nodes=nodes).profile()
    except ProfilingError:
        assume(False)


def _records(results) -> str:
    return json.dumps([result.to_dict() for result in results], sort_keys=True)


#: Supervision knobs must be invisible on clean runs: any mix of retry
#: budget, generous timeout, and backoff shape yields the same records.
#: Timeouts stay large (or absent) so no healthy cell can trip one.
execution_policies = st.one_of(
    st.none(),
    st.builds(
        ExecutionPolicy,
        max_attempts=st.sampled_from((1, 2, 3)),
        timeout_seconds=st.sampled_from((None, 120.0)),
        backoff_base_seconds=st.sampled_from((0.0, 0.01)),
        backoff_factor=st.sampled_from((1.0, 2.0)),
        on_failure=st.sampled_from(("quarantine", "abort")),
    ),
)


@settings(max_examples=5, **EQUIV_SETTINGS)
@given(
    spec=workload_specs(),
    run_indices=st.sampled_from(((0,), (0, 1))),
    execution=execution_policies,
)
def test_parallel_grid_is_bit_identical_to_serial(spec, run_indices, execution):
    """run_grid(workers=2) == run_grid(workers=1), record for record.

    Fresh experiments (separate caches) on both sides, so the parallel
    records really were produced by worker processes, not replayed.
    The supervised path runs under a randomized :class:`ExecutionPolicy`
    — clean runs must be policy-independent.
    """
    report = _profile(spec)
    grid = dict(nodes=(2, 3), cores_per_node=(4,), run_indices=run_indices)

    serial = Experiment(ResolvedSource(spec, report), ClusterPlatform())
    parallel = Experiment(ResolvedSource(spec, report), ClusterPlatform())
    serial_dump = _records(serial.run_grid(workers=1, **grid))
    parallel_dump = _records(
        parallel.run_grid(workers=2, execution=execution, **grid)
    )

    assert parallel_dump == serial_dump
    # The parallel cache is as warm as the serial one: replaying the
    # grid serially from it must also reproduce the records.
    assert _records(parallel.run_grid(workers=1, **grid)) == serial_dump


@settings(max_examples=3, **EQUIV_SETTINGS)
@given(spec=workload_specs(), execution=execution_policies)
def test_parallel_run_repeated_matches_serial(spec, execution):
    report = _profile(spec)
    serial = Experiment(ResolvedSource(spec, report), ClusterPlatform())
    parallel = Experiment(ResolvedSource(spec, report), ClusterPlatform())
    assert _records(
        parallel.run_repeated(2, 4, runs=2, workers=2, execution=execution)
    ) == _records(serial.run_repeated(2, 4, runs=2))


size_grids = st.lists(
    st.sampled_from((60.0, 120.0, 250.0, 500.0, 1000.0, 2000.0)),
    min_size=1, max_size=3, unique=True,
).map(tuple)


@settings(max_examples=20, **EQUIV_SETTINGS)
@given(
    spec=workload_specs(),
    num_workers=st.sampled_from((2, 5, 10)),
    vcpu_grid=st.lists(
        st.sampled_from((4, 8, 16, 32)), min_size=1, max_size=3, unique=True
    ).map(tuple),
    hdfs_sizes=size_grids,
    local_sizes=size_grids,
)
def test_pruned_search_finds_the_exhaustive_optimum(
    spec, num_workers, vcpu_grid, hdfs_sizes, local_sizes
):
    """grid_search(prune=True).best == grid_search(prune=False).best."""
    optimizer = CostOptimizer(
        Predictor(_profile(spec)),
        num_workers=num_workers,
        min_hdfs_gb=10.0,
        min_local_gb=10.0,
    )
    search = dict(
        vcpu_grid=vcpu_grid, hdfs_sizes_gb=hdfs_sizes, local_sizes_gb=local_sizes
    )
    full = optimizer.grid_search(**search)
    pruned = optimizer.grid_search(prune=True, **search)

    assert pruned.best.config == full.best.config
    assert pruned.best.cost_dollars == full.best.cost_dollars
    assert pruned.best.runtime_seconds == full.best.runtime_seconds
    # Every candidate is accounted for: evaluated or provably cut.
    assert pruned.num_pruned + len(pruned.evaluated) == len(full.evaluated)
    assert pruned.num_considered == full.num_considered
    assert full.num_pruned == 0


@settings(max_examples=3, **EQUIV_SETTINGS)
@given(spec=workload_specs())
def test_parallel_search_evaluates_identically(spec):
    """workers=2 reproduces the serial search's full evaluated tuple."""
    optimizer = CostOptimizer(
        Predictor(_profile(spec)),
        num_workers=5,
        min_hdfs_gb=10.0,
        min_local_gb=10.0,
    )
    search = dict(
        vcpu_grid=(8, 16), hdfs_sizes_gb=(250.0, 500.0), local_sizes_gb=(250.0,)
    )
    serial = optimizer.grid_search(**search)
    parallel = optimizer.grid_search(workers=2, **search)
    assert [
        (e.config, e.runtime_seconds, e.cost_dollars) for e in parallel.evaluated
    ] == [(e.config, e.runtime_seconds, e.cost_dollars) for e in serial.evaluated]


def test_parallel_grid_shares_one_cache_file(tmp_path):
    """A workers=2 sweep persists a cache a later serial sweep fully reuses."""
    from repro.workloads import make_gatk4_workload

    spec = make_gatk4_workload()
    report = Profiler(spec, nodes=3).profile()
    path = tmp_path / "cache.json"
    grid = dict(nodes=(3,), cores_per_node=(8, 16))

    warmup = Experiment(
        ResolvedSource(spec, report), ClusterPlatform(), cache=ResultCache(path)
    )
    first = _records(warmup.run_grid(workers=2, **grid))

    replay = Experiment(
        ResolvedSource(spec, report), ClusterPlatform(), cache=ResultCache(path)
    )
    assert _records(replay.run_grid(**grid)) == first
    assert replay.cache.measurement_stats.misses == 0
    assert replay.cache.prediction_stats.misses == 0
