"""PR-6 equivalence properties: the array kernel changes nothing.

The refactor moved every Eq.-1 evaluation — optimizer grid, descent
neighborhoods, disk-size sweeps, branch-and-bound lower bounds — onto
:mod:`repro.model.arrays`.  Its contract is *exact* equality with the
scalar stack, not approximate: the kernel replays the scalar model's
float operations in the scalar order, so every comparison below uses
``==`` on raw floats.  Checked across randomized workloads and grids on
both backends (pure Python and numpy, when installed), so the suite is
meaningful with or without numpy in the environment — CI runs it twice.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.cloud.bounds import _SAFETY, RuntimeLowerBound
from repro.cloud.disks import make_persistent_disk
from repro.cloud.optimizer import CostOptimizer
from repro.core import Predictor, Profiler
from repro.errors import ProfilingError
from repro.model.arrays import (
    CandidateBatch,
    Eq1BatchEvaluator,
    LowerBoundBatch,
    backend_name,
    score_batch,
)

from .strategies import PROPERTY_SETTINGS, workload_specs

EQUIV_SETTINGS = dict(
    suppress_health_check=(HealthCheck.filter_too_much, HealthCheck.too_slow),
    **PROPERTY_SETTINGS,
)

#: Both backends when numpy is importable, else just the fallback.
BACKENDS = ("python",) if backend_name() == "python" else ("python", "numpy")


def _has_work(spec) -> bool:
    return any(
        group.compute_seconds > 0
        or any(
            channel.bytes_per_task > 0
            for channel in (*group.read_channels, *group.write_channels)
        )
        for stage in spec.stages
        for group in stage.groups
    )


def _profile(spec, nodes=2):
    assume(_has_work(spec))
    try:
        return Profiler(spec, nodes=nodes).profile()
    except ProfilingError:
        assume(False)


def _optimizer(report, num_workers):
    return CostOptimizer(
        Predictor(report),
        num_workers=num_workers,
        min_hdfs_gb=10.0,
        min_local_gb=10.0,
    )


size_grids = st.lists(
    st.sampled_from((60.0, 120.0, 250.0, 500.0, 1000.0, 2000.0)),
    min_size=1, max_size=2, unique=True,
).map(tuple)

vcpu_grids = st.lists(
    st.sampled_from((4, 8, 16, 32)), min_size=1, max_size=2, unique=True
).map(tuple)


@settings(max_examples=15, **EQUIV_SETTINGS)
@given(
    spec=workload_specs(),
    num_workers=st.sampled_from((2, 5, 10)),
    vcpu_grid=vcpu_grids,
    hdfs_sizes=size_grids,
    local_sizes=size_grids,
    backend=st.sampled_from(BACKENDS),
)
def test_score_batch_equals_scalar_evaluation(
    spec, num_workers, vcpu_grid, hdfs_sizes, local_sizes, backend
):
    """Batch runtime/cost/bottlenecks == the scalar model's, bit for bit."""
    report = _profile(spec)
    optimizer = _optimizer(report, num_workers)
    configs = optimizer._grid_candidates(
        vcpu_grid, ("pd-standard", "pd-ssd"), hdfs_sizes, local_sizes
    )
    scores = Eq1BatchEvaluator(report).score(
        CandidateBatch.from_configs(configs), backend=backend
    )
    assert scores.backend == backend
    for index, config in enumerate(configs):
        prediction = optimizer._predict_fresh(config)
        assert float(scores.runtime_seconds[index]) == prediction.t_app
        assert float(scores.cost_dollars[index]) == config.cost_for_runtime(
            prediction.t_app
        )
        for stage_index, stage in enumerate(prediction.stages):
            assert (
                scores.bottleneck_label(stage_index, index)
                == stage.bottleneck
            )


@settings(max_examples=10, **EQUIV_SETTINGS)
@given(
    spec=workload_specs(),
    num_workers=st.sampled_from((2, 5, 10)),
    vcpu_grid=vcpu_grids,
    hdfs_sizes=size_grids,
    local_sizes=size_grids,
)
def test_grid_search_argmin_matches_scalar_reference(
    spec, num_workers, vcpu_grid, hdfs_sizes, local_sizes
):
    """grid_search picks what a scalar first-minimum scan would pick.

    The reference below is the pre-refactor algorithm inlined: evaluate
    every candidate through the scalar path in grid order and keep the
    first strict improvement.
    """
    report = _profile(spec)
    optimizer = _optimizer(report, num_workers)
    search = dict(
        vcpu_grid=vcpu_grid, hdfs_sizes_gb=hdfs_sizes, local_sizes_gb=local_sizes
    )
    result = optimizer.grid_search(**search)

    reference = None
    for config in optimizer._grid_candidates(
        vcpu_grid, ("pd-standard", "pd-ssd"), hdfs_sizes, local_sizes
    ):
        scored = optimizer.evaluate(config)
        if reference is None or scored.cost_dollars < reference.cost_dollars:
            reference = scored

    assert result.best.config == reference.config
    assert result.best.runtime_seconds == reference.runtime_seconds
    assert result.best.cost_dollars == reference.cost_dollars
    assert result.num_evaluated == len(result.evaluated)


@pytest.mark.skipif(
    backend_name() == "python", reason="numpy backend not installed"
)
@settings(max_examples=15, **EQUIV_SETTINGS)
@given(
    spec=workload_specs(),
    num_workers=st.sampled_from((2, 5, 10)),
    vcpu_grid=vcpu_grids,
    hdfs_sizes=size_grids,
    local_sizes=size_grids,
)
def test_numpy_and_python_backends_agree_bitwise(
    spec, num_workers, vcpu_grid, hdfs_sizes, local_sizes
):
    report = _profile(spec)
    configs = _optimizer(report, num_workers)._grid_candidates(
        vcpu_grid, ("pd-standard", "pd-ssd"), hdfs_sizes, local_sizes
    )
    batch = CandidateBatch.from_configs(configs)
    evaluator = Eq1BatchEvaluator(report)
    py = evaluator.score(batch, backend="python")
    np_ = evaluator.score(batch, backend="numpy")
    assert [float(x) for x in np_.runtime_seconds] == list(py.runtime_seconds)
    assert [float(x) for x in np_.cost_dollars] == list(py.cost_dollars)
    assert py.stage_names == np_.stage_names
    for stage_index in range(len(py.stage_names)):
        assert [int(code) for code in np_.bottlenecks[stage_index]] == list(
            py.bottlenecks[stage_index]
        )
    assert py.argmin_cost() == np_.argmin_cost()


@settings(max_examples=15, **EQUIV_SETTINGS)
@given(
    spec=workload_specs(),
    num_workers=st.sampled_from((2, 5, 10)),
    vcpu_grid=vcpu_grids,
    hdfs_sizes=size_grids,
    local_sizes=size_grids,
    backend=st.sampled_from(BACKENDS),
)
def test_batch_bounds_equal_scalar_bounds(
    spec, num_workers, vcpu_grid, hdfs_sizes, local_sizes, backend
):
    """runtime_bounds/cost_bounds == per-config runtime_bound/cost_bound."""
    report = _profile(spec)
    bound = RuntimeLowerBound(report)
    configs = _optimizer(report, num_workers)._grid_candidates(
        vcpu_grid, ("pd-standard", "pd-ssd"), hdfs_sizes, local_sizes
    )
    batch = CandidateBatch.from_configs(configs)
    batch_bound = LowerBoundBatch(
        bound._stages, safety=_SAFETY, backend=backend
    )
    runtimes = batch_bound.runtime_bounds(batch)
    costs = batch_bound.cost_bounds(batch)
    for index, config in enumerate(configs):
        assert float(runtimes[index]) == bound.runtime_bound(config)
        assert float(costs[index]) == bound.cost_bound(config)


@settings(max_examples=10, **EQUIV_SETTINGS)
@given(
    spec=workload_specs(),
    sizes=st.lists(
        st.sampled_from((50.0, 100.0, 250.0, 500.0, 1000.0)),
        min_size=1, max_size=4, unique=True,
    ).map(tuple),
    backend=st.sampled_from(BACKENDS),
)
def test_model_only_batch_matches_device_models(spec, sizes, backend):
    """A vcpus-free sweep batch reproduces per-size scalar models."""
    report = _profile(spec)
    predictor = Predictor(report)
    batch = CandidateBatch(
        nodes=(5,) * len(sizes),
        cores=(8,) * len(sizes),
        hdfs_kinds=("pd-standard",) * len(sizes),
        hdfs_sizes_gb=(500.0,) * len(sizes),
        local_kinds=("pd-ssd",) * len(sizes),
        local_sizes_gb=sizes,
    )
    scores = score_batch(
        report, batch, want_cost=False, want_bottlenecks=False, backend=backend
    )
    assert scores.cost_dollars is None
    for index, size_gb in enumerate(sizes):
        devices = {
            "hdfs": make_persistent_disk("pd-standard", 500.0),
            "local": make_persistent_disk("pd-ssd", size_gb),
        }
        expected = predictor.model_for_devices(devices).runtime(5, 8)
        assert float(scores.runtime_seconds[index]) == expected
