"""Property tests for cache-key fingerprints.

The result cache's correctness hangs on two facts about
:func:`repro.pipeline.fingerprint.fingerprint`: logically equal inputs
share a key (no silent cache splits), and unequal inputs essentially
never collide.  These sweeps hammer the canonicalization over random
JSON-ish structures.
"""

from __future__ import annotations

import copy

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pipeline.fingerprint import fingerprint

from tests.properties.strategies import PROPERTY_SETTINGS

_SETTINGS = dict(PROPERTY_SETTINGS, max_examples=60)

json_values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(10**9), max_value=10**9)
    | st.floats(allow_nan=False, allow_infinity=False, width=64)
    | st.text(max_size=8),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=6), children, max_size=4),
    max_leaves=12,
)


def _floatify(value):
    """Replace every exactly-representable int with the equal float."""
    if isinstance(value, bool):
        return value
    if isinstance(value, int) and abs(value) <= 2**53:
        return float(value)
    if isinstance(value, list):
        return [_floatify(item) for item in value]
    if isinstance(value, dict):
        return {key: _floatify(item) for key, item in value.items()}
    return value


@given(
    items=st.lists(
        st.tuples(st.text(max_size=6), json_values),
        max_size=5,
        unique_by=lambda pair: pair[0],
    )
)
@settings(**_SETTINGS)
def test_dict_key_order_never_changes_the_fingerprint(items):
    assert fingerprint(dict(items)) == fingerprint(dict(reversed(items)))


@given(value=json_values)
@settings(**_SETTINGS)
def test_copies_share_a_fingerprint(value):
    assert fingerprint(copy.deepcopy(value)) == fingerprint(value)


@given(value=json_values)
@settings(**_SETTINGS)
def test_integral_floats_fingerprint_like_ints_everywhere(value):
    # Regression sweep for the 1.0-vs-1 cache split: the float form of
    # any structure must address the same cache entry as the int form.
    assert fingerprint(_floatify(value)) == fingerprint(value)


@given(number=st.integers(min_value=-(2**53), max_value=2**53))
@settings(**_SETTINGS)
def test_every_representable_int_matches_its_float(number):
    assert fingerprint(float(number)) == fingerprint(number)


@given(
    members=st.sets(
        st.one_of(
            st.integers(min_value=-100, max_value=100),
            st.floats(allow_nan=False, allow_infinity=False, width=64),
            st.text(max_size=6),
        ),
        max_size=6,
    )
)
@settings(**_SETTINGS)
def test_mixed_type_sets_fingerprint_order_free(members):
    ordered = sorted(members, key=repr)
    assert fingerprint(set(ordered)) == fingerprint(set(reversed(ordered)))
