"""Metamorphic invariants over randomized spec x fault x (N, P) grids.

Each test draws a bounded random workload (see ``strategies``), runs the
real simulator, and asserts one invariant from :mod:`repro.invariants`.
Together the sweeps cover well over 200 randomized scenarios:

- conservation + Eq.-1 dominance, clean and under arbitrary faults;
- node-count monotonicity (N -> 2N), clean and under uniform faults;
- disk-speed monotonicity (2HDD -> 2SSD);
- fault dominance (faults never speed a run up);
- determinism (same inputs -> bit-identical measurements).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import HYBRID_CONFIGS, make_paper_cluster
from repro.cluster.cluster import HybridDiskConfig
from repro.invariants import (
    check_conservation,
    check_dominance,
    check_fault_dominance,
    check_measurements_identical,
    check_monotonic,
)
from repro.workloads.runner import measure_workload

from tests.properties.strategies import (
    PROPERTY_SETTINGS,
    fault_plans,
    uniform_fault_plans,
    workload_specs,
)

nodes_axis = st.integers(min_value=1, max_value=3)
cores_axis = st.sampled_from((1, 2, 4))


def _cluster(nodes: int) -> object:
    # Fresh cluster per run: measurements must not depend on device or
    # registry state left behind by a previous simulation.
    return make_paper_cluster(nodes, HYBRID_CONFIGS[0])


@given(spec=workload_specs(), plan=fault_plans(), nodes=nodes_axis, cores=cores_axis)
@settings(max_examples=70, **PROPERTY_SETTINGS)
def test_conservation_and_dominance_under_faults(spec, plan, nodes, cores):
    # Faults reshape the schedule but never the data, and no schedule —
    # faulted or not — beats the Eq.-1 physical floor.
    measurement = measure_workload(_cluster(nodes), cores, spec, faults=plan)
    violations = check_conservation(spec, measurement)
    violations += check_dominance(spec, measurement, _cluster(nodes), cores)
    assert all(stage.makespan >= 0.0 for stage in measurement.stages)
    assert not violations, "\n".join(map(str, violations))


@given(spec=workload_specs(), plan=fault_plans(), nodes=nodes_axis, cores=cores_axis)
@settings(max_examples=40, **PROPERTY_SETTINGS)
def test_faults_never_speed_up_a_run(spec, plan, nodes, cores):
    clean = measure_workload(_cluster(nodes), cores, spec)
    faulted = measure_workload(_cluster(nodes), cores, spec, faults=plan)
    violations = check_fault_dominance(clean, faulted)
    assert not violations, "\n".join(map(str, violations))


@given(spec=workload_specs(), nodes=st.sampled_from((1, 2)), cores=cores_axis)
@settings(max_examples=30, **PROPERTY_SETTINGS)
def test_doubling_nodes_never_increases_makespan(spec, nodes, cores):
    # Doubling N splits every per-node queue in two under round-robin
    # placement, so the makespan cannot rise.
    small = measure_workload(_cluster(nodes), cores, spec)
    large = measure_workload(_cluster(2 * nodes), cores, spec)
    violations = check_monotonic(
        [(nodes, small.total_seconds), (2 * nodes, large.total_seconds)],
        "node-monotonicity",
        spec.name,
    )
    assert not violations, "\n".join(map(str, violations))


@given(
    spec=workload_specs(),
    plan=uniform_fault_plans(),
    nodes=st.sampled_from((1, 2)),
    cores=cores_axis,
)
@settings(max_examples=25, **PROPERTY_SETTINGS)
def test_doubling_nodes_stays_monotone_under_uniform_faults(spec, plan, nodes, cores):
    # Cluster-uniform throttles degrade both shapes identically, so the
    # doubling argument survives the fault plan.
    small = measure_workload(_cluster(nodes), cores, spec, faults=plan)
    large = measure_workload(_cluster(2 * nodes), cores, spec, faults=plan)
    violations = check_monotonic(
        [(nodes, small.total_seconds), (2 * nodes, large.total_seconds)],
        "node-monotonicity-faulted",
        spec.name,
    )
    assert not violations, "\n".join(map(str, violations))


@given(spec=workload_specs(), nodes=st.sampled_from((1, 2)), cores=cores_axis)
@settings(max_examples=25, **PROPERTY_SETTINGS)
def test_faster_disks_never_increase_makespan(spec, nodes, cores):
    # The SSD bandwidth curve pointwise dominates the HDD curve, so
    # swapping 2HDD for 2SSD can only help.
    hdd = measure_workload(
        make_paper_cluster(nodes, HybridDiskConfig(0, "hdd", "hdd")), cores, spec
    )
    ssd = measure_workload(
        make_paper_cluster(nodes, HybridDiskConfig(0, "ssd", "ssd")), cores, spec
    )
    violations = check_monotonic(
        [(0, hdd.total_seconds), (1, ssd.total_seconds)],
        "disk-speed-monotonicity",
        spec.name,
    )
    assert not violations, "\n".join(map(str, violations))


@given(spec=workload_specs(), plan=fault_plans(), nodes=nodes_axis, cores=cores_axis)
@settings(max_examples=25, **PROPERTY_SETTINGS)
def test_identical_inputs_measure_bit_identically(spec, plan, nodes, cores):
    # Two runs from fresh clusters with the same spec, shape, and fault
    # plan must agree bit for bit — the foundation the result cache and
    # every benchmark guard stand on.
    first = measure_workload(_cluster(nodes), cores, spec, faults=plan)
    second = measure_workload(_cluster(nodes), cores, spec, faults=plan)
    violations = check_measurements_identical(first, second, spec.name)
    assert not violations, "\n".join(map(str, violations))
