"""Whole-pipeline determinism: fresh sweeps agree byte for byte.

Two independently constructed :class:`~repro.pipeline.experiment
.Experiment` objects — separate caches, separate clusters, separate
resolution — must produce identical :class:`RunResult` records over an
``N x P`` grid, clean and under an injected fault seed.  This is the
end-to-end form of the bit-identity invariant: it covers spec
resolution, profiling, simulation, prediction, and record composition
in one sweep.
"""

from __future__ import annotations

import json

from repro.faults import random_fault_plan
from repro.pipeline.experiment import Experiment
from repro.pipeline.platforms import ClusterPlatform
from repro.units import MB
from repro.workloads.base import ChannelSpec, StageSpec, TaskGroupSpec, WorkloadSpec

GRID = dict(nodes=(2, 3), cores_per_node=(4, 8))


def _workload() -> WorkloadSpec:
    # Compact two-stage app (read -> shuffle -> write) so each fresh
    # experiment profiles and sweeps in well under a second; the
    # byte-identity property is scale-free.
    mapper = TaskGroupSpec(
        name="map",
        count=12,
        read_channels=(ChannelSpec("hdfs_read", 16 * MB, 1 * MB, 90 * MB),),
        compute_seconds=0.4,
        write_channels=(ChannelSpec("shuffle_write", 6 * MB, 1 * MB, 50 * MB),),
    )
    reducer = TaskGroupSpec(
        name="reduce",
        count=8,
        read_channels=(ChannelSpec("shuffle_read", 9 * MB, 30_000.0, 40 * MB),),
        compute_seconds=0.6,
        write_channels=(ChannelSpec("hdfs_write", 10 * MB, 1 * MB, 60 * MB),),
        stream_chunks=2,
    )
    return WorkloadSpec(
        name="grid-app",
        stages=(
            StageSpec(name="map", groups=(mapper,)),
            StageSpec(name="reduce", groups=(reducer,)),
        ),
    )


def _grid_dump(faults=None) -> str:
    # A brand-new experiment every time: private cache, fresh platform,
    # fresh source resolution.  Nothing is shared between calls.
    experiment = Experiment(_workload(), ClusterPlatform(), faults=faults)
    results = experiment.run_grid(**GRID)
    return json.dumps([result.to_dict() for result in results], sort_keys=True)


def test_fresh_grid_sweeps_are_byte_identical():
    assert _grid_dump() == _grid_dump()


def test_fresh_grid_sweeps_are_byte_identical_under_a_fault_seed():
    plan_a = random_fault_plan(7, nodes=3)
    plan_b = random_fault_plan(7, nodes=3)
    faulted_a = _grid_dump(faults=plan_a)
    assert faulted_a == _grid_dump(faults=plan_b)
    # And the faulted sweep genuinely differs from the clean one.
    assert faulted_a != _grid_dump()


def test_run_indices_change_the_records_deterministically():
    experiment = Experiment(_workload(), ClusterPlatform())
    first, second = experiment.run_grid(nodes=(2,), cores_per_node=(4,),
                                        run_indices=(0, 1))
    assert first.measured_seconds != second.measured_seconds
    replay_first, replay_second = experiment.run_grid(
        nodes=(2,), cores_per_node=(4,), run_indices=(0, 1)
    )
    assert json.dumps(replay_first.to_dict()) == json.dumps(first.to_dict())
    assert json.dumps(replay_second.to_dict()) == json.dumps(second.to_dict())
