"""The fault layer itself: plan validation, injection semantics, caching.

Example-based companions to the randomized sweeps in
``test_invariants.py`` — each test pins one documented behaviour of
:mod:`repro.faults` so a regression names the broken contract directly.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import HYBRID_CONFIGS, make_paper_cluster
from repro.errors import FaultError, SimulationError
from repro.faults import (
    DiskFault,
    FaultPlan,
    NodeFailureFault,
    StragglerFault,
    load_fault_plan,
    random_fault_plan,
)
from repro.pipeline.cache import ResultCache
from repro.pipeline.experiment import Experiment
from repro.pipeline.platforms import ClusterPlatform
from repro.resilience import default_mitigations
from repro.units import MB
from repro.workloads.base import ChannelSpec, StageSpec, TaskGroupSpec, WorkloadSpec
from repro.workloads.runner import measure_workload

from tests.properties.strategies import PROPERTY_SETTINGS, fault_plans


def _spec(count: int = 8, compute: float = 0.5) -> WorkloadSpec:
    stage = StageSpec(
        name="s0",
        groups=(
            TaskGroupSpec(
                name="g0",
                count=count,
                read_channels=(ChannelSpec("hdfs_read", 8 * MB, 1 * MB, 60 * MB),),
                compute_seconds=compute,
                write_channels=(ChannelSpec("shuffle_write", 4 * MB, 1 * MB, 50 * MB),),
            ),
        ),
        task_jitter=0.0,
    )
    return WorkloadSpec(name="faulty", stages=(stage,))


def _measure(spec, nodes=2, cores=2, faults=None):
    return measure_workload(
        make_paper_cluster(nodes, HYBRID_CONFIGS[0]), cores, spec, faults=faults
    )


class TestPlanValidation:
    def test_bad_factor_rejected(self):
        with pytest.raises(FaultError):
            DiskFault(factor=-0.1)
        with pytest.raises(FaultError):
            DiskFault(factor=1.5)

    def test_zero_factor_models_a_dead_disk(self):
        DiskFault(factor=0.0, start=1.0, end=5.0)  # legal since resilience

    def test_bad_window_rejected(self):
        with pytest.raises(FaultError):
            DiskFault(factor=0.5, start=10.0, end=5.0)

    def test_bad_slowdown_rejected(self):
        with pytest.raises(FaultError):
            StragglerFault(node=0, slowdown=0.9)

    def test_unknown_type_tag_rejected(self):
        with pytest.raises(FaultError):
            FaultPlan.from_dict({"name": "x", "faults": [{"type": "meteor"}]})

    @given(plan=fault_plans())
    @settings(max_examples=25, **PROPERTY_SETTINGS)
    def test_json_round_trip_preserves_the_fingerprint(self, plan):
        clone = FaultPlan.from_dict(json.loads(json.dumps(plan.to_dict())))
        assert clone == plan
        assert clone.fingerprint() == plan.fingerprint()

    def test_save_and_load(self, tmp_path):
        plan = FaultPlan(name="p", faults=(StragglerFault(node=1, slowdown=2.0),))
        path = tmp_path / "plan.json"
        plan.save(path)
        assert load_fault_plan(path) == plan

    def test_random_plans_are_pure_functions_of_the_seed(self):
        a = random_fault_plan(7, nodes=3)
        b = random_fault_plan(7, nodes=3)
        assert a == b and a.fingerprint() == b.fingerprint()
        assert random_fault_plan(8, nodes=3) != a


class TestInjectionSemantics:
    def test_empty_plan_is_bit_identical_to_clean(self):
        spec = _spec()
        clean = _measure(spec)
        empty = _measure(spec, faults=FaultPlan(name="empty"))
        assert empty.total_seconds == clean.total_seconds
        assert empty.stages[0].makespan == clean.stages[0].makespan

    def test_out_of_range_node_indices_are_inert(self):
        # Faults name nodes by index so one plan ports across cluster
        # sizes; indices past the cluster edge simply do nothing.
        spec = _spec()
        clean = _measure(spec, nodes=2)
        plan = FaultPlan(
            name="miss",
            faults=(
                StragglerFault(node=5, slowdown=4.0),
                NodeFailureFault(node=9, at_seconds=0.0),
            ),
        )
        assert _measure(spec, nodes=2, faults=plan).total_seconds == clean.total_seconds

    def test_straggler_slows_the_run(self):
        spec = _spec()
        clean = _measure(spec)
        plan = FaultPlan(name="s", faults=(StragglerFault(node=0, slowdown=3.0),))
        assert _measure(spec, faults=plan).total_seconds > clean.total_seconds

    def test_disk_throttle_window_slows_the_run(self):
        spec = _spec()
        clean = _measure(spec)
        plan = FaultPlan(name="d", faults=(DiskFault(factor=0.2, start=0.0, end=5.0),))
        assert _measure(spec, faults=plan).total_seconds > clean.total_seconds

    def test_throttle_window_after_completion_is_inert(self):
        spec = _spec()
        clean = _measure(spec)
        start = clean.total_seconds + 100.0
        plan = FaultPlan(
            name="late", faults=(DiskFault(factor=0.2, start=start, end=start + 5.0),)
        )
        assert _measure(spec, faults=plan).total_seconds == clean.total_seconds

    def test_node_death_reruns_tasks_and_conserves_bytes(self):
        spec = _spec()
        clean = _measure(spec)
        plan = FaultPlan(
            name="kill", faults=(NodeFailureFault(node=1, at_seconds=0.5),)
        )
        faulted = _measure(spec, faults=plan)
        assert faulted.total_seconds > clean.total_seconds
        # Re-executed tasks re-read and re-write nothing extra in the
        # measurement: byte accounting follows the spec, not the retries.
        assert faulted.stages[0].read_bytes == clean.stages[0].read_bytes
        assert faulted.stages[0].write_bytes == clean.stages[0].write_bytes

    @given(
        at_fraction=st.floats(min_value=0.05, max_value=0.95),
        count=st.integers(min_value=2, max_value=4),
        mitigate=st.booleans(),
    )
    @settings(max_examples=50, **PROPERTY_SETTINGS)
    def test_node_death_after_the_last_task_started_terminates(
        self, at_fraction, count, mitigate
    ):
        # The edge this pins: with <= one wave of tasks, every task has
        # already started when the node dies — nothing is left in any
        # pending queue, so recovery must re-inject the lost attempts
        # (not just reshuffle queues) or the run would hang.  Both the
        # legacy instant-retry path and the resilience retry path must
        # terminate and conserve the spec's bytes.
        spec = _spec(count=count)  # count <= 2 nodes x 2 cores = one wave
        clean = _measure(spec)
        plan = FaultPlan(
            name="late-kill",
            faults=(
                NodeFailureFault(
                    node=1, at_seconds=clean.total_seconds * at_fraction
                ),
            ),
        )
        policy = default_mitigations() if mitigate else None
        faulted = measure_workload(
            make_paper_cluster(2, HYBRID_CONFIGS[0]), 2, spec,
            faults=plan, resilience=policy,
        )
        assert faulted.total_seconds >= clean.total_seconds
        assert faulted.stages[0].read_bytes == clean.stages[0].read_bytes
        assert faulted.stages[0].write_bytes == clean.stages[0].write_bytes
        if mitigate:
            summary = faulted.stages[0].resilience
            assert summary is not None
            assert summary.attempts >= count

    def test_killing_every_node_raises(self):
        plan = FaultPlan(
            name="apocalypse",
            faults=(NodeFailureFault(node=0, at_seconds=0.1),),
        )
        with pytest.raises(SimulationError, match="no live nodes"):
            _measure(_spec(), nodes=1, faults=plan)


class TestExperimentCaching:
    def test_same_plan_hits_the_cache_and_clean_runs_stay_separate(self):
        cache = ResultCache()
        plan = FaultPlan(name="s", faults=(StragglerFault(node=0, slowdown=2.0),))
        experiment = Experiment(_spec(), ClusterPlatform(), cache=cache, faults=plan)
        faulted_a = experiment.measure(2, 2)
        faulted_b = experiment.measure(2, 2)
        assert faulted_b is faulted_a  # cache hit: the very same record
        clean = experiment.measure(2, 2, faults=None)
        assert clean.total_seconds < faulted_a.total_seconds

    def test_per_call_override_replaces_the_experiment_plan(self):
        experiment = Experiment(_spec(), ClusterPlatform())
        base = experiment.measure(2, 2)
        plan = FaultPlan(name="s", faults=(StragglerFault(node=0, slowdown=3.0),))
        assert experiment.measure(2, 2, faults=plan).total_seconds > base.total_seconds

    @given(seed=st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=15, **PROPERTY_SETTINGS)
    def test_cache_is_bit_identical_under_identical_fault_seeds(self, seed):
        # Two experiments built from the same fault seed produce records
        # that agree bit for bit — and cache-replayed records match the
        # freshly simulated ones exactly.
        spec = _spec()
        results = []
        for _ in range(2):
            experiment = Experiment(
                spec, ClusterPlatform(), faults=random_fault_plan(seed, nodes=2)
            )
            first = experiment.measure(2, 2)
            replay = experiment.measure(2, 2)
            assert replay is first
            results.append(first)
        assert results[0].total_seconds == results[1].total_seconds
        for stage_a, stage_b in zip(results[0].stages, results[1].stages):
            assert stage_a.makespan == stage_b.makespan
            assert stage_a.read_bytes == stage_b.read_bytes
