"""Hypothesis strategies for the metamorphic pipeline suite.

Unlike ``tests/property/`` (micro-level component invariants), this
package sweeps the *whole* simulator/model pipeline: randomized
:class:`~repro.workloads.base.WorkloadSpec` trees crossed with
randomized :class:`~repro.faults.plan.FaultPlan` instances and
``(N, P)`` shapes, checked against the :mod:`repro.invariants`
catalogue.

The strategies are bounded so one example simulates in milliseconds:
a few tasks, a few megabytes, one or two stages.  The invariants are
scale-free, so small instances exercise the same code paths (queueing,
contention, fault windows, re-execution) as the paper-sized workloads.

All tests share :data:`PROPERTY_SETTINGS` — derandomized with no
example database, so CI and local runs execute the identical fixed
example set.
"""

from __future__ import annotations

import dataclasses

from hypothesis import strategies as st

from repro.faults.plan import (
    DiskFault,
    FaultPlan,
    NicJitterFault,
    NodeFailureFault,
    StragglerFault,
)
from repro.resilience import (
    BlacklistPolicy,
    ResiliencePolicy,
    RetryPolicy,
    SpeculationPolicy,
)
from repro.schedule.mix import MIX_POLICIES, MixJob
from repro.units import KB, MB
from repro.workloads.base import ChannelSpec, StageSpec, TaskGroupSpec, WorkloadSpec

#: Shared ``@settings`` kwargs: derandomized (fixed example sequence, so
#: CI is reproducible), no deadline (simulation time varies with the
#: drawn workload), no local example database.
PROPERTY_SETTINGS = dict(deadline=None, derandomize=True, database=None)

#: Request sizes seen in the paper's workloads (HDFS block, shuffle).
REQUEST_SIZES = (30 * KB, 128 * KB, 1 * MB)

_READ_KINDS = ("hdfs_read", "shuffle_read")
_WRITE_KINDS = ("hdfs_write", "shuffle_write")


def _channels(kinds: tuple[str, ...]) -> st.SearchStrategy:
    channel = st.builds(
        ChannelSpec,
        kind=st.sampled_from(kinds),
        bytes_per_task=st.one_of(
            st.just(0.0),  # zero-byte edge: channel exists but moves nothing
            st.floats(min_value=64 * KB, max_value=32 * MB),
        ),
        request_size=st.sampled_from(REQUEST_SIZES),
        per_core_throughput=st.one_of(
            st.none(),
            st.floats(min_value=10 * MB, max_value=120 * MB),
        ),
    )
    return st.lists(channel, max_size=2).map(tuple)


@st.composite
def stage_specs(draw, name: str = "stage") -> StageSpec:
    """One bounded random stage: 1-2 groups of 1-8 tasks each."""
    groups = tuple(
        TaskGroupSpec(
            name=f"g{index}",
            count=draw(st.integers(min_value=1, max_value=8)),
            read_channels=draw(_channels(_READ_KINDS)),
            compute_seconds=draw(
                st.one_of(
                    st.just(0.0),
                    st.floats(min_value=0.01, max_value=2.0),
                )
            ),
            write_channels=draw(_channels(_WRITE_KINDS)),
            stream_chunks=draw(st.integers(min_value=1, max_value=2)),
            gc_coeff=draw(st.sampled_from((0.0, 0.02))),
        )
        for index in range(draw(st.integers(min_value=1, max_value=2)))
    )
    return StageSpec(
        name=name,
        groups=groups,
        repeat=draw(st.integers(min_value=1, max_value=2)),
        task_jitter=draw(st.sampled_from((0.0, 0.1, 0.2))),
    )


@st.composite
def workload_specs(draw) -> WorkloadSpec:
    """A bounded random application of 1-2 stages."""
    num_stages = draw(st.integers(min_value=1, max_value=2))
    return WorkloadSpec(
        name="hypo",
        stages=tuple(
            draw(stage_specs(name=f"s{index}")) for index in range(num_stages)
        ),
        description="property-generated",
    )


#: Scheduling policies a mix accepts — canonicalization makes every
#: mix invariant covered here hold under both.
mix_policies = st.sampled_from(MIX_POLICIES)

#: Arrival offsets that land jobs before, during, and long after the
#: first job's stages on a bounded spec.
_ARRIVALS = (0.0, 0.5, 2.0, 10.0)

#: Volume scales exercising shrink, identity (fingerprint-preserving),
#: and growth.
_VOLUME_SCALES = (0.5, 1.0, 2.0)


@st.composite
def mix_jobs_lists(draw, max_jobs: int = 4) -> list[MixJob]:
    """K in [1, max_jobs] bounded jobs with staggered arrivals.

    Names are forced unique (``j0``, ``j1``, ...) so interference checks
    can key solo baselines by the mix timeline's job name without going
    through the duplicate-suffix path (that path has its own unit
    tests).
    """
    count = draw(st.integers(min_value=1, max_value=max_jobs))
    return [
        MixJob(
            spec=dataclasses.replace(draw(workload_specs()), name=f"j{index}"),
            arrival=draw(st.sampled_from(_ARRIVALS)),
            volume_scale=draw(st.sampled_from(_VOLUME_SCALES)),
        )
        for index in range(count)
    ]


@st.composite
def disk_faults(draw, node_uniform: bool = False) -> DiskFault:
    """A degradation/throttle window; optionally cluster-uniform."""
    start = draw(st.floats(min_value=0.0, max_value=5.0))
    end = (
        start + draw(st.floats(min_value=0.5, max_value=30.0))
        if draw(st.booleans())
        else None
    )
    return DiskFault(
        factor=draw(st.floats(min_value=0.2, max_value=1.0)),
        start=start,
        end=end,
        # Node-uniform plans hit every node identically, preserving the
        # symmetry the N -> 2N monotonicity argument rests on.
        node=None if node_uniform else draw(st.one_of(st.none(), st.integers(0, 3))),
        role=draw(st.sampled_from((None, "hdfs", "local"))),
        direction=draw(st.sampled_from((None, "read", "write"))),
    )


straggler_faults = st.builds(
    StragglerFault,
    node=st.integers(min_value=0, max_value=3),
    slowdown=st.floats(min_value=1.0, max_value=4.0),
)

# Node deaths spare index 0 so at least one node always survives even on
# a single-node cluster (out-of-range indices are inert by design).
node_failure_faults = st.builds(
    NodeFailureFault,
    node=st.integers(min_value=1, max_value=3),
    at_seconds=st.floats(min_value=0.0, max_value=10.0),
)

nic_jitter_faults = st.builds(
    NicJitterFault,
    factor=st.floats(min_value=0.2, max_value=1.0),
    period=st.floats(min_value=0.5, max_value=5.0),
    duty=st.floats(min_value=0.1, max_value=0.9),
)


@st.composite
def fault_plans(draw, allow_failures: bool = True) -> FaultPlan:
    """A random mixed plan of 0-3 faults (may be empty)."""
    kinds = [disk_faults(), straggler_faults, nic_jitter_faults]
    if allow_failures:
        kinds.append(node_failure_faults)
    faults = draw(st.lists(st.one_of(*kinds), max_size=3))
    return FaultPlan(name="hypo-plan", faults=tuple(faults))


@st.composite
def resilience_policies(draw, require_speculation: bool = False) -> ResiliencePolicy:
    """A random mitigation mix: each mechanism independently on or off.

    Bounded to values that keep examples fast — short backoffs and stall
    timeouts so failure recovery happens inside a tiny run's horizon.
    """
    speculation = st.builds(
        SpeculationPolicy,
        quantile=st.sampled_from((0.5, 0.75)),
        multiplier=st.sampled_from((1.2, 1.5, 2.0)),
        min_finished=st.just(2),
    )
    return ResiliencePolicy(
        speculation=draw(
            speculation if require_speculation
            else st.one_of(st.none(), speculation)
        ),
        retry=RetryPolicy(
            max_task_attempts=draw(st.sampled_from((2, 4))),
            backoff_seconds=draw(st.sampled_from((0.0, 0.25, 0.5))),
            stall_timeout_seconds=draw(st.sampled_from((5.0, 10.0))),
        ),
        blacklist=draw(st.one_of(
            st.none(),
            st.builds(BlacklistPolicy, max_node_strikes=st.sampled_from((2, 3))),
        )),
    )


@st.composite
def uniform_fault_plans(draw) -> FaultPlan:
    """Cluster-uniform disk throttles only — safe for N -> 2N comparisons.

    Per-node faults break the doubling symmetry (a straggler at index 3
    is inert at N=2 but active at N=4), so monotonicity tests restrict
    to plans that degrade every node the same way.
    """
    faults = draw(st.lists(disk_faults(node_uniform=True), max_size=2))
    return FaultPlan(name="hypo-uniform", faults=tuple(faults))
