"""Randomized sweeps of the resilience layer (ISSUE PR 4).

Each example draws a bounded random workload, fault plan, and mitigation
policy, runs the real simulator up to three times (clean, unmitigated,
mitigated), and asserts the mitigation contracts from
:mod:`repro.invariants`:

- **mitigation dominance** — mitigations never beat the clean run and
  never exceed the unmitigated run plus their recorded costs;
- **conservation** — mitigations reshape the schedule (duplicates,
  retries, blacklist drains) but never the data;
- **accounting consistency** — the per-stage ``StageResilience`` records
  are internally coherent (wins <= launches, attempts cover tasks, ...);
- **clean-path identity** — with no faults and no speculation, an armed
  policy changes nothing, bit for bit;
- **determinism** — mitigated runs are pure functions of their inputs.

Together with the node-death property in ``test_faults.py`` these cover
well over 500 randomized resilience scenarios.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import HYBRID_CONFIGS, make_paper_cluster
from repro.invariants import (
    check_conservation,
    check_measurements_identical,
    check_mitigation_dominance,
)
from repro.resilience import (
    BlacklistPolicy,
    ResiliencePolicy,
    RetryPolicy,
    merge_summaries,
)
from repro.workloads.runner import measure_workload

from tests.properties.strategies import (
    PROPERTY_SETTINGS,
    fault_plans,
    resilience_policies,
    workload_specs,
)

# Two nodes minimum: single-node clusters leave speculation and the
# blacklist nowhere to go, and the fault strategies' node deaths always
# spare index 0.
nodes_axis = st.integers(min_value=2, max_value=3)
cores_axis = st.sampled_from((1, 2, 4))


def _cluster(nodes: int):
    return make_paper_cluster(nodes, HYBRID_CONFIGS[0])


@given(
    spec=workload_specs(),
    plan=fault_plans(),
    policy=resilience_policies(),
    nodes=nodes_axis,
    cores=cores_axis,
)
@settings(max_examples=400, **PROPERTY_SETTINGS)
def test_mitigation_dominance(spec, plan, policy, nodes, cores):
    clean = measure_workload(_cluster(nodes), cores, spec)
    unmitigated = measure_workload(_cluster(nodes), cores, spec, faults=plan)
    mitigated = measure_workload(
        _cluster(nodes), cores, spec, faults=plan, resilience=policy
    )
    violations = check_mitigation_dominance(clean, unmitigated, mitigated, policy)
    assert not violations, "\n".join(map(str, violations))


@given(
    spec=workload_specs(),
    plan=fault_plans(),
    policy=resilience_policies(require_speculation=True),
    nodes=nodes_axis,
    cores=cores_axis,
)
@settings(max_examples=100, **PROPERTY_SETTINGS)
def test_mitigated_runs_conserve_bytes_and_account_consistently(
    spec, plan, policy, nodes, cores
):
    mitigated = measure_workload(
        _cluster(nodes), cores, spec, faults=plan, resilience=policy
    )
    violations = check_conservation(spec, mitigated)
    assert not violations, "\n".join(map(str, violations))
    for stage in mitigated.stages:
        summary = stage.resilience
        assert summary is not None  # every mitigated stage carries one
        assert summary.speculative_wins <= summary.speculative_launched
        # Repeat-scaled stages simulate one repetition, so attempts can
        # be below num_tasks — but a run always launches something.
        assert 1 <= summary.attempts
        assert summary.task_retries >= 0
        assert summary.backoff_seconds >= 0.0
        assert summary.stage_reattempts >= 0
    merged = merge_summaries(stage.resilience for stage in mitigated.stages)
    assert merged.attempts >= sum(
        1 for _ in mitigated.stages
    )  # at least one attempt per stage happened


@given(
    spec=workload_specs(),
    policy=resilience_policies(),
    nodes=nodes_axis,
    cores=cores_axis,
)
@settings(max_examples=80, **PROPERTY_SETTINGS)
def test_clean_runs_without_speculation_are_bit_identical(
    spec, policy, nodes, cores
):
    # With no faults nothing ever fails or stalls, so retry and
    # blacklist mechanisms have no trigger; strip speculation (which may
    # legitimately duplicate jittered stragglers) and the armed engine
    # must be indistinguishable from the historical one.
    quiet = ResiliencePolicy(
        speculation=None, retry=policy.retry, blacklist=policy.blacklist
    )
    base = measure_workload(_cluster(nodes), cores, spec)
    armed = measure_workload(_cluster(nodes), cores, spec, resilience=quiet)
    violations = check_measurements_identical(base, armed, spec.name)
    assert not violations, "\n".join(map(str, violations))
    for stage in armed.stages:
        assert stage.resilience is not None
        assert not stage.resilience.mitigated


@given(
    spec=workload_specs(),
    plan=fault_plans(),
    policy=resilience_policies(require_speculation=True),
    nodes=nodes_axis,
    cores=cores_axis,
)
@settings(max_examples=60, **PROPERTY_SETTINGS)
def test_mitigated_runs_are_deterministic(spec, plan, policy, nodes, cores):
    # Speculation, retries, and blacklisting must stay pure functions of
    # their inputs — the cache and every benchmark guard depend on it.
    first = measure_workload(
        _cluster(nodes), cores, spec, faults=plan, resilience=policy
    )
    second = measure_workload(
        _cluster(nodes), cores, spec, faults=plan, resilience=policy
    )
    violations = check_measurements_identical(first, second, spec.name)
    assert not violations, "\n".join(map(str, violations))
    first_summary = merge_summaries(s.resilience for s in first.stages)
    second_summary = merge_summaries(s.resilience for s in second.stages)
    assert first_summary == second_summary


def test_blacklist_never_strands_the_last_node():
    # Even an absurdly trigger-happy blacklist leaves one node serving:
    # graceful degradation beats a dead cluster.
    from repro.faults import FaultPlan, StragglerFault

    from tests.unit.pipeline.conftest import make_tiny_workload

    policy = ResiliencePolicy(
        speculation=None,
        retry=RetryPolicy(),
        blacklist=BlacklistPolicy(max_node_strikes=1),
    )
    plan = FaultPlan(
        name="both-slow",
        faults=(
            StragglerFault(node=0, slowdown=4.0),
            StragglerFault(node=1, slowdown=4.0),
        ),
    )
    mitigated = measure_workload(
        _cluster(2), 2, make_tiny_workload(), faults=plan, resilience=policy
    )
    merged = merge_summaries(s.resilience for s in mitigated.stages)
    assert len(merged.blacklisted) <= 1
    assert mitigated.total_seconds > 0.0
