"""Chaos: hung and transiently failing cells retry to the clean result.

A hang is the nastiest fault: the worker is alive but will never
finish, so only the supervisor's per-item wall-clock deadline can
reclaim it (by killing the pool and resubmitting).  Transient
exceptions exercise the retry/backoff path without touching the pool.
"""

import time

from repro.parallel import ExecutionPolicy

from ._faults import cell_tag, flaky_cell, hang_once_cell
from .conftest import CELLS, GRID, records

#: Injected hang length — also the suite's worst-case stall if the
#: timeout machinery ever breaks, so keep it finite but unambiguous.
HANG_SECONDS = 20.0


def test_hung_task_trips_timeout_and_retries(
    inject, make_experiment, serial_records
):
    inject(hang_once_cell, target=cell_tag(CELLS[0]), hang_seconds=HANG_SECONDS)
    policy = ExecutionPolicy(
        max_attempts=3,
        timeout_seconds=1.5,
        backoff_base_seconds=0.01,
        backoff_max_seconds=0.05,
    )
    experiment = make_experiment()
    start = time.monotonic()
    result = experiment.run_grid(workers=2, execution=policy, **GRID)
    elapsed = time.monotonic() - start

    assert records(result) == serial_records
    # The deadline, not the hang, bounded the run: finishing in under
    # the injected sleep proves the stuck worker was killed, its pool
    # rebuilt, and the cell's retry produced the clean record.
    assert elapsed < HANG_SECONDS


def test_transient_exceptions_retry_with_backoff(
    inject, make_experiment, serial_records
):
    # Every cell fails its first attempt; a 2-attempt budget is exactly
    # enough, so success here pins that retries are per-item (a shared
    # budget would exhaust) and that first attempts are charged once.
    inject(flaky_cell, target="*")
    policy = ExecutionPolicy(
        max_attempts=2, backoff_base_seconds=0.01, backoff_max_seconds=0.05
    )
    experiment = make_experiment()
    result = experiment.run_grid(workers=2, execution=policy, **GRID)
    assert records(result) == serial_records


def test_backoff_schedule_is_reproducible():
    # The waits the supervisor sleeps between attempts are a pure
    # function of the policy — chaos reruns see identical schedules.
    policy = ExecutionPolicy(
        backoff_base_seconds=0.05, backoff_factor=2.0, backoff_max_seconds=5.0
    )
    schedule = [policy.backoff_seconds(attempt) for attempt in range(1, 6)]
    assert schedule == [0.05, 0.1, 0.2, 0.4, 0.8]
    assert schedule == [policy.backoff_seconds(a) for a in range(1, 6)]
