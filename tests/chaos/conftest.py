"""Shared fixtures for the chaos harness (see docs/EXECUTION.md).

The workload is deliberately tiny — two short stages — so each grid
cell simulates in milliseconds and the suite's wall-clock is dominated
by the faults it injects (pool rebuilds, timeouts), not the work.
Everything here asserts against ``serial_records``: the clean
single-process sweep the fault-ridden runs must reproduce bit-for-bit.
"""

from __future__ import annotations

import json

import pytest

import repro.pipeline.experiment as experiment_module
from repro.pipeline.cache import ResultCache
from repro.pipeline.experiment import Experiment
from repro.pipeline.platforms import ClusterPlatform
from repro.pipeline.sources import ResolvedSource
from repro.units import KB, MB
from repro.workloads.base import (
    ChannelSpec,
    StageSpec,
    TaskGroupSpec,
    WorkloadSpec,
)

from ._faults import CHAOS_CELL_ENV, CHAOS_DIR_ENV, CHAOS_HANG_ENV

#: The grid every chaos test sweeps: four cells, enough to keep two
#: workers busy while one of them is being killed, hung, or poisoned.
GRID = dict(nodes=(2, 3), cores_per_node=(4, 8), run_indices=(0,))
CELLS = [(2, 4, 0), (2, 8, 0), (3, 4, 0), (3, 8, 0)]


def make_chaos_workload(name: str = "chaos-tiny") -> WorkloadSpec:
    return WorkloadSpec(
        name=name,
        stages=(
            StageSpec(
                name="ingest",
                groups=(
                    TaskGroupSpec(
                        name="g",
                        count=8,
                        read_channels=(
                            ChannelSpec(
                                kind="hdfs_read",
                                bytes_per_task=32 * MB,
                                request_size=1 * MB,
                            ),
                        ),
                        compute_seconds=0.8,
                        write_channels=(
                            ChannelSpec(
                                kind="shuffle_write",
                                bytes_per_task=16 * MB,
                                request_size=1 * MB,
                            ),
                        ),
                    ),
                ),
            ),
            StageSpec(
                name="reduce",
                groups=(
                    TaskGroupSpec(
                        name="g",
                        count=6,
                        read_channels=(
                            ChannelSpec(
                                kind="shuffle_read",
                                bytes_per_task=20 * MB,
                                request_size=64 * KB,
                            ),
                        ),
                        compute_seconds=0.4,
                        write_channels=(
                            ChannelSpec(
                                kind="hdfs_write",
                                bytes_per_task=8 * MB,
                                request_size=1 * MB,
                            ),
                        ),
                    ),
                ),
            ),
        ),
    )


@pytest.fixture(scope="session")
def chaos_source():
    from repro.core import Profiler

    spec = make_chaos_workload()
    return ResolvedSource(spec, Profiler(spec, nodes=3).profile())


@pytest.fixture()
def make_experiment(chaos_source):
    """Factory for fresh experiments over the shared resolved source."""

    def _make(cache_path=None):
        cache = ResultCache(cache_path) if cache_path is not None else None
        return Experiment(chaos_source, ClusterPlatform(), cache=cache)

    return _make


def records(results) -> str:
    return json.dumps([result.to_dict() for result in results], sort_keys=True)


@pytest.fixture(scope="session")
def serial_records(chaos_source):
    """The clean serial baseline every chaotic run must reproduce."""
    experiment = Experiment(chaos_source, ClusterPlatform())
    return records(experiment.run_grid(workers=1, **GRID))


@pytest.fixture()
def inject(monkeypatch, tmp_path):
    """Install a fault injector as the grid-cell task function.

    ``inject(fault_fn, target="2,4,0")`` patches
    ``repro.pipeline.experiment._run_grid_cell`` — which the supervisor
    looks up at submit time — and primes the chaos environment that
    forked workers inherit.  ``target="*"`` hits every cell.
    """
    flags = tmp_path / "chaos-flags"
    flags.mkdir()

    def _install(fault_fn, target="*", hang_seconds=None):
        monkeypatch.setenv(CHAOS_DIR_ENV, str(flags))
        monkeypatch.setenv(CHAOS_CELL_ENV, target)
        if hang_seconds is not None:
            monkeypatch.setenv(CHAOS_HANG_ENV, str(hang_seconds))
        monkeypatch.setattr(experiment_module, "_run_grid_cell", fault_fn)

    return _install
