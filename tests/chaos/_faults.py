"""Fault injectors for the chaos harness.

Each injector wraps the real grid-cell task
(:func:`repro.pipeline.experiment._run_grid_cell`) with one misbehaviour
— kill the worker, hang, raise — and is installed by monkeypatching the
``_run_grid_cell`` name in the experiment module.  Two properties make
this work end-to-end:

- the supervisor looks the task function up at call time, so the parent
  submits the patched wrapper;
- pools use the ``fork`` start method on Linux, so worker processes
  inherit both the patched module and the chaos environment variables.

Cross-process "only misbehave once" memory lives in flag files under
``REPRO_CHAOS_DIR``: the first attempt touches the flag *before*
misbehaving, so the retried attempt sees it and runs the real task.
All injectors are module-level functions — they must pickle by
reference into pool workers.
"""

from __future__ import annotations

import os
import signal
import time
from pathlib import Path

from repro.pipeline.experiment import _run_grid_cell as real_cell

#: Directory for cross-process first-attempt flags (set per test).
CHAOS_DIR_ENV = "REPRO_CHAOS_DIR"
#: Target cell as "nodes,cores,run" — or "*" to target every cell.
CHAOS_CELL_ENV = "REPRO_CHAOS_CELL"
#: Sleep length for :func:`hang_once_cell`, in seconds.
CHAOS_HANG_ENV = "REPRO_CHAOS_HANG"


def cell_tag(cell: tuple[int, int, int]) -> str:
    return ",".join(str(part) for part in cell)


def _is_target(cell: tuple[int, int, int]) -> bool:
    target = os.environ.get(CHAOS_CELL_ENV, "*")
    return target == "*" or target == cell_tag(cell)


def _first_time(cell: tuple[int, int, int], kind: str) -> bool:
    flag = Path(os.environ[CHAOS_DIR_ENV]) / f"{kind}-{cell_tag(cell)}"
    if flag.exists():
        return False
    flag.touch()
    return True


def kill_once_cell(cell: tuple[int, int, int]):
    """SIGKILL this worker on the target cell's first attempt."""
    if _is_target(cell) and _first_time(cell, "kill"):
        os.kill(os.getpid(), signal.SIGKILL)
    return real_cell(cell)


def hang_once_cell(cell: tuple[int, int, int]):
    """Hang well past any test timeout on the target cell's first attempt."""
    if _is_target(cell) and _first_time(cell, "hang"):
        time.sleep(float(os.environ.get(CHAOS_HANG_ENV, "20.0")))
    return real_cell(cell)


def flaky_cell(cell: tuple[int, int, int]):
    """Raise a transient error on every cell's first attempt."""
    if _is_target(cell) and _first_time(cell, "flaky"):
        raise RuntimeError(f"injected transient fault for cell {cell}")
    return real_cell(cell)


def poison_cell(cell: tuple[int, int, int]):
    """Raise on *every* attempt of the target cell — a true poison item."""
    if _is_target(cell):
        raise RuntimeError(f"injected permanent fault for cell {cell}")
    return real_cell(cell)
