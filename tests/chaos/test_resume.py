"""Chaos: checkpoint-resume across failed, killed, and corrupted runs.

Parallel grids persist the shared cache once per merged shard, so
whatever interrupts a sweep — a quarantined cell, a parent killed
between merges, a checkpoint file damaged on disk — the next run loads
what survived and recomputes only what did not.
"""

import json

import pytest

from repro.errors import ExecutionError
from repro.parallel import ExecutionPolicy
from repro.pipeline.cache import ResultCache

from ._faults import cell_tag, poison_cell
from .conftest import CELLS, GRID, records

FAST = ExecutionPolicy(
    max_attempts=2, backoff_base_seconds=0.01, backoff_max_seconds=0.05
)


def test_quarantined_cell_leaves_a_resumable_cache(
    inject, make_experiment, serial_records, tmp_path
):
    # Run 1: one cell fails every attempt; the other three cells' shards
    # land in the checkpoint before the structured error surfaces.
    poisoned = CELLS[2]
    inject(poison_cell, target=cell_tag(poisoned))
    cache_path = tmp_path / "cache.json"
    with pytest.raises(ExecutionError) as err:
        make_experiment(cache_path).run_grid(workers=2, execution=FAST, **GRID)
    failure = err.value.failures[0]
    assert failure.item == poisoned
    assert failure.kind == "exception"
    assert "injected permanent fault" in failure.message

    checkpoint = ResultCache(cache_path)
    merged_cells = sum(
        checkpoint.contains_measurement(key)
        for key in json.loads(cache_path.read_text())["measurements"]
    )
    assert merged_cells == len(CELLS) - 1

    # Run 2 (chaos cleared by fixture teardown happens at test end, so
    # resume within the test via a serial replay): only the poisoned
    # cell is cold.
    replay = make_experiment(cache_path)
    result = replay.run_grid(workers=1, **GRID)
    assert records(result) == serial_records
    assert replay.cache.measurement_stats.misses == 1
    assert replay.cache.prediction_stats.misses == 1


def test_run_killed_between_shard_merges_resumes_incrementally(
    make_experiment, serial_records, tmp_path
):
    # Simulate "killed between merges" exactly: a checkpoint holding a
    # strict prefix of the shards.  Build it by running a sub-grid, then
    # resume the full grid and count what was recomputed.
    cache_path = tmp_path / "cache.json"
    partial = make_experiment(cache_path)
    sub_grid = dict(GRID, nodes=(2,))  # half the cells, then "killed"
    partial.run_grid(workers=2, execution=FAST, **sub_grid)
    assert cache_path.exists()

    resumed = make_experiment(cache_path)
    result = resumed.run_grid(workers=2, execution=FAST, **GRID)
    assert records(result) == serial_records
    # The pre-split saw the first half warm: no recomputation for it.
    # (contains_* peeks are counter-free, so count via a serial replay.)
    final = make_experiment(cache_path)
    assert records(final.run_grid(workers=1, **GRID)) == serial_records
    assert final.cache.measurement_stats.misses == 0
    assert final.cache.prediction_stats.misses == 0


def test_truncated_checkpoint_degrades_to_recompute(
    make_experiment, serial_records, tmp_path
):
    # Damage the checkpoint *between* runs — the on-disk analogue of a
    # crash racing the final shard merge.  The resume warns, starts
    # empty, recomputes, and still matches the baseline bit-for-bit.
    cache_path = tmp_path / "cache.json"
    make_experiment(cache_path).run_grid(workers=2, execution=FAST, **GRID)
    text = cache_path.read_text()
    cache_path.write_text(text[: len(text) // 3])

    with pytest.warns(UserWarning, match="unreadable"):
        resumed = make_experiment(cache_path)
    result = resumed.run_grid(workers=2, execution=FAST, **GRID)
    assert records(result) == serial_records
    # The recomputed checkpoint is whole again.
    assert records(
        make_experiment(cache_path).run_grid(workers=1, **GRID)
    ) == serial_records


def test_corrupt_shard_entries_recompute_only_themselves(
    make_experiment, serial_records, tmp_path
):
    # Corrupt a single cell's entries inside an otherwise valid
    # checkpoint: the resume must warn, keep every healthy entry, and
    # recompute exactly the damaged cell.
    cache_path = tmp_path / "cache.json"
    make_experiment(cache_path).run_grid(workers=2, execution=FAST, **GRID)

    data = json.loads(cache_path.read_text())
    victim = next(iter(data["measurements"]))
    data["measurements"][victim] = {"schema": "wrong"}
    cache_path.write_text(json.dumps(data))

    with pytest.warns(UserWarning, match="skipping corrupt measurements"):
        resumed = make_experiment(cache_path)
    result = resumed.run_grid(workers=2, execution=FAST, **GRID)
    assert records(result) == serial_records
