"""Chaos: workers SIGKILLed mid-grid must not change the records.

The supervisor's worker-loss path — detect ``BrokenProcessPool``,
rebuild the pool, resubmit only the in-flight cells — is invisible at
the API: ``run_grid`` still returns records bit-identical to the clean
serial sweep.
"""

from repro.parallel import ExecutionPolicy

from ._faults import cell_tag, kill_once_cell, poison_cell
from .conftest import CELLS, GRID, records

FAST = ExecutionPolicy(
    max_attempts=4, backoff_base_seconds=0.01, backoff_max_seconds=0.05
)


def test_sigkilled_worker_recovers_bit_identical(
    inject, make_experiment, serial_records
):
    inject(kill_once_cell, target=cell_tag(CELLS[0]))
    experiment = make_experiment()
    result = experiment.run_grid(workers=2, execution=FAST, **GRID)
    assert records(result) == serial_records


def test_every_cell_killed_once_still_recovers(
    inject, make_experiment, serial_records
):
    # The worst clean-recoverable storm: each cell's first attempt dies.
    # Each death breaks the whole pool, so innocent in-flight cells are
    # resubmitted too — and the sweep still converges to the baseline.
    inject(kill_once_cell, target="*")
    experiment = make_experiment()
    result = experiment.run_grid(workers=2, execution=FAST, **GRID)
    assert records(result) == serial_records


def test_survivor_shards_are_checkpointed_despite_poison(
    inject, make_experiment, tmp_path
):
    # A permanently failing cell quarantines, but every surviving cell's
    # shard must already be merged and persisted before the error
    # surfaces — that is what makes the failure resumable (covered in
    # test_resume.py); here we pin that healthy cells are unaffected.
    import pytest

    from repro.errors import ExecutionError

    inject(poison_cell, target=cell_tag(CELLS[1]))
    cache_path = tmp_path / "cache.json"
    experiment = make_experiment(cache_path)
    with pytest.raises(ExecutionError) as err:
        experiment.run_grid(workers=2, execution=FAST, **GRID)
    assert len(err.value.failures) == 1
    assert err.value.failures[0].attempts == FAST.max_attempts
    assert cache_path.exists()  # survivors checkpointed incrementally
