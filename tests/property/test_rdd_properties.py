"""Property-based tests: the functional engine vs. plain-Python reference."""

from collections import Counter, defaultdict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spark.context import DoppioContext

keys = st.integers(min_value=-20, max_value=20)
values = st.integers(min_value=-1000, max_value=1000)
pairs = st.lists(st.tuples(keys, values), max_size=200)
ints = st.lists(st.integers(min_value=-10_000, max_value=10_000), max_size=300)
partition_counts = st.integers(min_value=1, max_value=12)


@given(data=ints, slices=partition_counts)
@settings(max_examples=100)
def test_collect_preserves_order(data, slices):
    sc = DoppioContext()
    assert sc.parallelize(data, slices).collect() == data


@given(data=ints, slices=partition_counts)
@settings(max_examples=100)
def test_map_matches_builtin(data, slices):
    sc = DoppioContext()
    result = sc.parallelize(data, slices).map(lambda x: x * 3 + 1).collect()
    assert result == [x * 3 + 1 for x in data]


@given(data=ints, slices=partition_counts)
@settings(max_examples=100)
def test_filter_matches_builtin(data, slices):
    sc = DoppioContext()
    result = sc.parallelize(data, slices).filter(lambda x: x % 2 == 0).collect()
    assert result == [x for x in data if x % 2 == 0]


@given(data=pairs, slices=partition_counts, reducers=partition_counts)
@settings(max_examples=100)
def test_group_by_key_matches_reference(data, slices, reducers):
    sc = DoppioContext()
    grouped = dict(
        sc.parallelize(data, slices).group_by_key(reducers).collect()
    )
    reference = defaultdict(list)
    for key, value in data:
        reference[key].append(value)
    assert set(grouped) == set(reference)
    for key in reference:
        assert sorted(grouped[key]) == sorted(reference[key])


@given(data=pairs, slices=partition_counts)
@settings(max_examples=100)
def test_reduce_by_key_matches_reference(data, slices):
    sc = DoppioContext()
    reduced = dict(
        sc.parallelize(data, slices).reduce_by_key(lambda a, b: a + b).collect()
    )
    reference = defaultdict(int)
    for key, value in data:
        reference[key] += value
    assert reduced == dict(reference)


@given(data=ints, slices=partition_counts, target=partition_counts)
@settings(max_examples=100)
def test_repartition_preserves_multiset(data, slices, target):
    sc = DoppioContext()
    result = sc.parallelize(data, slices).repartition(target).collect()
    assert Counter(result) == Counter(data)


@given(data=pairs, slices=partition_counts)
@settings(max_examples=50)
def test_sort_by_key_globally_sorted(data, slices):
    sc = DoppioContext()
    result = sc.parallelize(data, slices).sort_by_key(4).collect()
    result_keys = [key for key, _ in result]
    assert result_keys == sorted(key for key, _ in data)


@given(data=ints, slices=partition_counts)
@settings(max_examples=50)
def test_count_matches_len(data, slices):
    sc = DoppioContext()
    assert sc.parallelize(data, slices).count() == len(data)


@given(data=ints, slices=partition_counts)
@settings(max_examples=50)
def test_cache_transparent(data, slices):
    sc = DoppioContext()
    rdd = sc.parallelize(data, slices).map(lambda x: -x).cache()
    first = rdd.collect()
    second = rdd.collect()
    assert first == second == [-x for x in data]
