"""Property-based tests for discrete-event simulator invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import HYBRID_CONFIGS, make_paper_cluster
from repro.simulator.engine import SimulationEngine
from repro.simulator.task import ComputePhase, IoPhase, SimTask
from repro.units import MB

task_specs = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=64 * MB),  # read bytes
        st.floats(min_value=0.0, max_value=5.0),  # compute seconds
        st.floats(min_value=0.0, max_value=64 * MB),  # write bytes
    ),
    min_size=1,
    max_size=30,
)


def build_tasks(specs):
    tasks = []
    for read_bytes, compute, write_bytes in specs:
        tasks.append(
            SimTask(
                phases=(
                    IoPhase(role="hdfs", total_bytes=read_bytes,
                            request_size=1 * MB, is_write=False,
                            per_stream_cap=60 * MB),
                    ComputePhase(compute),
                    IoPhase(role="local", total_bytes=write_bytes,
                            request_size=1 * MB, is_write=True,
                            per_stream_cap=50 * MB),
                )
            )
        )
    return tasks


@given(specs=task_specs, cores=st.integers(min_value=1, max_value=16))
@settings(max_examples=60, deadline=None)
def test_makespan_bounds(specs, cores):
    """Makespan lies between the critical-path and the serial bound."""
    cluster = make_paper_cluster(1, HYBRID_CONFIGS[0])
    engine = SimulationEngine(cluster, cores_per_node=cores)
    tasks = build_tasks(specs)
    makespan = engine.run(tasks)
    node = cluster.slaves[0]
    serial_bound = 0.0
    longest_task = 0.0
    byte_eps = 1e-6  # phases below the engine's epsilon are skipped
    for read_bytes, compute, write_bytes in specs:
        read_seconds = (
            read_bytes / min(60 * MB, node.hdfs_device.read_bandwidth(1 * MB))
            if read_bytes > byte_eps else 0.0
        )
        write_seconds = (
            write_bytes / min(50 * MB, node.local_device.write_bandwidth(1 * MB))
            if write_bytes > byte_eps else 0.0
        )
        if compute <= 1e-9:  # compute phases below the engine epsilon skip
            compute = 0.0
        task_floor = read_seconds + compute + write_seconds
        serial_bound += task_floor
        longest_task = max(longest_task, task_floor)
    assert makespan <= serial_bound * (1 + 1e-6)
    assert makespan >= longest_task * (1 - 1e-6)


@given(specs=task_specs, cores=st.integers(min_value=1, max_value=16))
@settings(max_examples=40, deadline=None)
def test_every_task_completes_with_valid_times(specs, cores):
    cluster = make_paper_cluster(1, HYBRID_CONFIGS[0])
    engine = SimulationEngine(cluster, cores_per_node=cores)
    tasks = build_tasks(specs)
    makespan = engine.run(tasks)
    for task in tasks:
        assert task.start_time >= 0.0
        assert task.finish_time >= task.start_time
        assert task.finish_time <= makespan + 1e-9


@given(specs=task_specs)
@settings(max_examples=30, deadline=None)
def test_more_cores_never_slower(specs):
    cluster = make_paper_cluster(1, HYBRID_CONFIGS[0])
    few = SimulationEngine(cluster, cores_per_node=2).run(build_tasks(specs))
    many = SimulationEngine(cluster, cores_per_node=8).run(build_tasks(specs))
    assert many <= few * (1 + 1e-6)


@given(specs=task_specs, cores=st.integers(min_value=1, max_value=8))
@settings(max_examples=30, deadline=None)
def test_concurrency_never_exceeds_cores(specs, cores):
    """At no event do more than N*P tasks overlap in time."""
    cluster = make_paper_cluster(2, HYBRID_CONFIGS[0])
    engine = SimulationEngine(cluster, cores_per_node=cores)
    tasks = build_tasks(specs)
    engine.run(tasks)
    events = []
    for task in tasks:
        if task.finish_time > task.start_time:
            events.append((task.start_time, 1))
            events.append((task.finish_time, -1))
    events.sort()
    active = 0
    for _, delta in events:
        active += delta
        assert active <= 2 * cores
