"""Property-based tests for the LRU storage-memory manager."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spark.memory import StorageMemoryManager

operations = st.lists(
    st.one_of(
        st.tuples(st.just("put"), st.integers(0, 30),
                  st.floats(min_value=0.0, max_value=150.0)),
        st.tuples(st.just("get"), st.integers(0, 30), st.just(0.0)),
        st.tuples(st.just("remove"), st.integers(0, 30), st.just(0.0)),
    ),
    max_size=80,
)


@given(ops=operations)
@settings(max_examples=200)
def test_capacity_never_exceeded(ops):
    pool = StorageMemoryManager(100.0)
    for op, key, size in ops:
        if op == "put":
            pool.put(f"b{key}", size)
        elif op == "get":
            pool.get(f"b{key}")
        else:
            pool.remove(f"b{key}")
        assert pool.used_bytes <= pool.capacity_bytes + 1e-9


@given(ops=operations)
@settings(max_examples=200)
def test_eviction_accounting_conserves_bytes(ops):
    """Bytes put == bytes resident + bytes evicted + bytes removed/rejected."""
    pool = StorageMemoryManager(100.0)
    sizes: dict[str, float] = {}
    evicted_total = 0.0
    removed_total = 0.0
    rejected_total = 0.0
    for op, key, size in ops:
        block = f"b{key}"
        if op == "put":
            already = pool.contains(block)
            events = pool.put(block, size)
            evicted_total += sum(e.size_bytes for e in events)
            if not already:
                if pool.contains(block):
                    sizes[block] = size
                else:
                    rejected_total += size
        elif op == "remove":
            if pool.remove(block):
                removed_total += sizes.pop(block, 0.0)
        else:
            pool.get(block)
    resident = pool.used_bytes
    total_put = sum(
        size for op, _, size in ops if op == "put"
    )
    # Every put byte is either resident, evicted, explicitly removed,
    # rejected (too big / duplicate), or was a duplicate re-put.
    assert resident <= total_put + 1e-9
    assert evicted_total + removed_total + rejected_total <= total_put + 1e-9


@given(ops=operations)
@settings(max_examples=200)
def test_evicted_blocks_are_not_resident(ops):
    pool = StorageMemoryManager(100.0)
    for op, key, size in ops:
        block = f"b{key}"
        if op == "put":
            events = pool.put(block, size)
            for event in events:
                assert not pool.contains(event.block_id)
        elif op == "get":
            pool.get(block)
        else:
            pool.remove(block)


@given(ops=operations)
@settings(max_examples=100)
def test_lru_order_is_consistent(ops):
    """cached_blocks() always lists each resident block exactly once."""
    pool = StorageMemoryManager(100.0)
    for op, key, size in ops:
        block = f"b{key}"
        if op == "put":
            pool.put(block, size)
        elif op == "get":
            pool.get(block)
        else:
            pool.remove(block)
        listed = pool.cached_blocks()
        assert len(listed) == len(set(listed))
        for name in listed:
            assert pool.contains(name)
