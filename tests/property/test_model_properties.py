"""Property-based tests for Equation 1's structural invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.stage_model import StageModel
from repro.core.variables import IoChannel, StageModelVariables
from repro.units import GB, KB, MB

variables_strategy = st.builds(
    StageModelVariables,
    name=st.just("stage"),
    num_tasks=st.integers(min_value=1, max_value=100_000),
    t_avg=st.floats(min_value=0.0, max_value=1000.0),
    delta_scale=st.floats(min_value=0.0, max_value=100.0),
    channels=st.lists(
        st.builds(
            IoChannel,
            kind=st.sampled_from(
                ["hdfs_read", "shuffle_read", "persist_read",
                 "hdfs_write", "shuffle_write", "persist_write"]
            ),
            total_bytes=st.floats(min_value=0.0, max_value=1000 * GB),
            request_size=st.floats(min_value=4 * KB, max_value=128 * MB),
            bandwidth=st.floats(min_value=1 * MB, max_value=1000 * MB),
            is_write=st.booleans(),
            device=st.sampled_from(["hdfs", "local"]),
        ),
        max_size=4,
    ).map(tuple),
    delta_read=st.floats(min_value=0.0, max_value=100.0),
    delta_write=st.floats(min_value=0.0, max_value=100.0),
)

operating_points = st.tuples(
    st.integers(min_value=1, max_value=64),  # nodes
    st.integers(min_value=1, max_value=64),  # cores
)


@given(variables=variables_strategy, point=operating_points)
@settings(max_examples=200)
def test_t_stage_is_max_of_terms(variables, point):
    nodes, cores = point
    model = StageModel(variables)
    prediction = model.predict(nodes, cores)
    assert prediction.t_stage == max(
        prediction.t_scale, prediction.t_read_limit, prediction.t_write_limit
    )
    assert prediction.t_stage >= 0.0


@given(variables=variables_strategy, point=operating_points)
@settings(max_examples=200)
def test_more_cores_never_hurt(variables, point):
    nodes, cores = point
    model = StageModel(variables)
    assert model.runtime(nodes, cores + 1) <= model.runtime(nodes, cores) + 1e-9


@given(variables=variables_strategy, point=operating_points)
@settings(max_examples=200)
def test_more_nodes_never_hurt(variables, point):
    nodes, cores = point
    model = StageModel(variables)
    assert model.runtime(nodes + 1, cores) <= model.runtime(nodes, cores) + 1e-9


@given(variables=variables_strategy, point=operating_points,
       factor=st.floats(min_value=1.0, max_value=100.0))
@settings(max_examples=200)
def test_faster_devices_never_hurt(variables, point, factor):
    """Scaling every channel bandwidth up can only shrink the runtime."""
    nodes, cores = point
    slow = StageModel(variables)
    fast_channels = tuple(
        IoChannel(
            kind=ch.kind,
            total_bytes=ch.total_bytes,
            request_size=ch.request_size,
            bandwidth=ch.bandwidth * factor,
            is_write=ch.is_write,
            device=ch.device,
        )
        for ch in variables.channels
    )
    fast = StageModel(
        StageModelVariables(
            name=variables.name,
            num_tasks=variables.num_tasks,
            t_avg=variables.t_avg,
            delta_scale=variables.delta_scale,
            channels=fast_channels,
            delta_read=variables.delta_read,
            delta_write=variables.delta_write,
        )
    )
    assert fast.runtime(nodes, cores) <= slow.runtime(nodes, cores) + 1e-9


@given(variables=variables_strategy, point=operating_points)
@settings(max_examples=100)
def test_runtime_at_least_io_floor(variables, point):
    """The stage can never beat its per-device transfer floors."""
    nodes, cores = point
    model = StageModel(variables)
    runtime = model.runtime(nodes, cores)
    read_floor = variables.read_limit_seconds_per_node() / nodes
    write_floor = variables.write_limit_seconds_per_node() / nodes
    assert runtime >= read_floor - 1e-9
    assert runtime >= write_floor - 1e-9


@given(variables=variables_strategy)
@settings(max_examples=100)
def test_bottleneck_labels_consistent(variables):
    model = StageModel(variables)
    prediction = model.predict(4, 8)
    label = prediction.bottleneck
    values = {
        "scale": prediction.t_scale,
        "read": prediction.t_read_limit,
        "write": prediction.t_write_limit,
    }
    assert values[label] == prediction.t_stage
