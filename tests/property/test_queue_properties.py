"""Property-based tests for the processor-sharing device queue and the
generic resource layer beneath it."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.resources import (
    DeviceResource,
    LinkResource,
    SharedStream,
    rebalance_coupled,
)
from repro.storage.device import make_ssd
from repro.storage.queue import DeviceQueue, IoStream
from repro.units import KB, MB

stream_specs = st.lists(
    st.tuples(
        st.floats(min_value=1 * KB, max_value=128 * MB),  # request size
        st.one_of(st.none(), st.floats(min_value=1 * MB, max_value=1000 * MB)),
        st.booleans(),  # is_write
    ),
    min_size=1,
    max_size=24,
)


def build_queue(specs):
    queue = DeviceQueue(make_ssd())
    streams = []
    for request_size, cap, is_write in specs:
        stream = IoStream(
            remaining_bytes=1 * MB,
            request_size=request_size,
            is_write=is_write,
            per_stream_cap=cap,
        )
        queue.attach(stream)
        streams.append(stream)
    return queue, streams


@given(specs=stream_specs)
@settings(max_examples=200)
def test_rates_never_exceed_caps(specs):
    _, streams = build_queue(specs)
    for stream in streams:
        if stream.per_stream_cap is not None:
            assert stream.rate <= stream.per_stream_cap * (1 + 1e-9)


@given(specs=stream_specs)
@settings(max_examples=200)
def test_aggregate_within_device_capacity(specs):
    """Per direction, allocated rates never exceed the effective bandwidth
    at the smallest active request size."""
    queue, streams = build_queue(specs)
    for is_write in (False, True):
        group = [s for s in streams if s.is_write == is_write]
        if not group:
            continue
        smallest = min(s.request_size for s in group)
        capacity = queue.device.bandwidth(smallest, is_write)
        assert sum(s.rate for s in group) <= capacity * (1 + 1e-9)


@given(specs=stream_specs)
@settings(max_examples=200)
def test_work_conserving(specs):
    """Either the capacity is fully used or every stream runs at its cap."""
    queue, streams = build_queue(specs)
    for is_write in (False, True):
        group = [s for s in streams if s.is_write == is_write]
        if not group:
            continue
        smallest = min(s.request_size for s in group)
        capacity = queue.device.bandwidth(smallest, is_write)
        used = sum(s.rate for s in group)
        all_capped = all(
            s.per_stream_cap is not None
            and math.isclose(s.rate, s.per_stream_cap, rel_tol=1e-9)
            for s in group
        )
        assert all_capped or math.isclose(used, capacity, rel_tol=1e-6)


@given(specs=stream_specs)
@settings(max_examples=100)
def test_identical_streams_get_identical_rates(specs):
    request_size, cap, is_write = specs[0]
    queue = DeviceQueue(make_ssd())
    streams = [
        IoStream(remaining_bytes=1 * MB, request_size=request_size,
                 is_write=is_write, per_stream_cap=cap)
        for _ in range(6)
    ]
    for stream in streams:
        queue.attach(stream)
    rates = {round(s.rate, 6) for s in streams}
    assert len(rates) == 1


@given(specs=stream_specs)
@settings(max_examples=100)
def test_detach_all_leaves_queue_empty(specs):
    queue, streams = build_queue(specs)
    for stream in streams:
        queue.detach(stream)
    assert queue.num_active == 0
    assert all(s.rate == 0.0 for s in streams)


# -- generic resource invariants under mixed request sizes -----------------

def build_resource(specs):
    """One read DeviceResource holding streams of mixed request sizes."""
    resource = DeviceResource(make_ssd(), is_write=False)
    streams = []
    for request_size, cap, _ in specs:
        stream = SharedStream(
            remaining_bytes=1 * MB, request_size=request_size, per_stream_cap=cap
        )
        resource.attach(stream)
        streams.append(stream)
    return resource, streams


@given(specs=stream_specs)
@settings(max_examples=200)
def test_resource_conservation(specs):
    """Sum of allocated rates never exceeds the capacity at the active
    demand profile (effective bandwidth at the smallest request size)."""
    resource, streams = build_resource(specs)
    capacity = resource.capacity_for(streams)
    assert sum(s.rate for s in streams) <= capacity * (1 + 1e-9)


@given(specs=stream_specs)
@settings(max_examples=200)
def test_resource_caps_respected(specs):
    """No stream is ever allocated more than its software-path cap T."""
    _, streams = build_resource(specs)
    for stream in streams:
        if stream.per_stream_cap is not None:
            assert stream.rate <= stream.per_stream_cap * (1 + 1e-9)


@given(specs=stream_specs, link_gbps=st.floats(min_value=0.1, max_value=100.0))
@settings(max_examples=200)
def test_coupled_conservation_and_caps(specs, link_gbps):
    """Progressive filling keeps every coupled resource within capacity
    and every stream within its cap, under mixed request sizes."""
    disk = DeviceResource(make_ssd(), is_write=False)
    link = LinkResource("nic", link_gbps * 1e9 / 8.0)
    streams = []
    for request_size, cap, crosses_link in specs:
        stream = SharedStream(
            remaining_bytes=1 * MB, request_size=request_size, per_stream_cap=cap
        )
        disk.attach(stream, rebalance=False)
        if crosses_link:
            link.attach(stream, rebalance=False)
        streams.append(stream)
    rebalance_coupled([disk, link])
    for resource in (disk, link):
        if resource.num_active:
            total = sum(s.rate for s in resource.streams)
            assert total <= resource.capacity_for(resource.streams) * (1 + 1e-9)
    for stream in streams:
        if stream.per_stream_cap is not None:
            assert stream.rate <= stream.per_stream_cap * (1 + 1e-9)
        assert stream.rate > 0.0
