"""Property-based tests for HDFS / Spark-local storage invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.storage.device import make_hdd
from repro.storage.hdfs import Hdfs
from repro.storage.local import SparkLocalDir
from repro.units import GB, MB, TB

file_operations = st.lists(
    st.tuples(
        st.sampled_from(["put", "delete"]),
        st.integers(min_value=0, max_value=12),  # path index
        st.floats(min_value=0.0, max_value=200 * GB),
    ),
    max_size=40,
)


@given(ops=file_operations)
@settings(max_examples=150)
def test_hdfs_allocation_consistent_with_catalog(ops):
    devices = [make_hdd(name=f"dn{i}", capacity_bytes=2 * TB) for i in range(3)]
    hdfs = Hdfs(devices=devices, block_size=128 * MB, replication=2)
    for op, index, size in ops:
        path = f"/f{index}"
        try:
            if op == "put":
                hdfs.put(path, size)
            else:
                hdfs.delete(path)
        except StorageError:
            pass
        # Invariant: physical usage == logical bytes * replication,
        # spread evenly.
        expected = hdfs.total_stored_bytes * hdfs.replication / len(devices)
        for device in devices:
            assert abs(device.used_bytes - expected) < 1.0


@given(ops=file_operations)
@settings(max_examples=150)
def test_hdfs_devices_never_exceed_capacity(ops):
    devices = [make_hdd(name=f"dn{i}", capacity_bytes=500 * GB) for i in range(2)]
    hdfs = Hdfs(devices=devices, replication=2)
    for op, index, size in ops:
        path = f"/f{index}"
        try:
            if op == "put":
                hdfs.put(path, size)
            else:
                hdfs.delete(path)
        except StorageError:
            pass
        for device in devices:
            assert device.used_bytes <= device.capacity_bytes + 1e-6


@given(ops=file_operations)
@settings(max_examples=150)
def test_local_dir_usage_matches_files(ops):
    local = SparkLocalDir(make_hdd(capacity_bytes=2 * TB))
    # Float tolerance must scale with the *largest* value that entered the
    # running sum: allocate-then-release of a huge file leaves absorption
    # residue on the order of its ulp, independent of the remaining total.
    churned = 0.0
    for op, index, size in ops:
        name = f"block-{index}"
        kind = SparkLocalDir.SHUFFLE if index % 2 else SparkLocalDir.PERSIST
        try:
            if op == "put":
                local.write(name, size, kind)
                churned = max(churned, size)
            else:
                local.delete(name)
        except StorageError:
            pass
        tolerance = max(1e-9 * churned, 1e-6)
        catalog_total = sum(f.size_bytes for f in local.list_files())
        assert abs(local.device.used_bytes - catalog_total) <= tolerance
        split_total = local.used_bytes_of("shuffle") + local.used_bytes_of(
            "persist"
        )
        assert abs(split_total - local.used_bytes) <= tolerance


@given(
    sizes=st.lists(st.floats(min_value=1.0, max_value=100 * GB), min_size=1,
                   max_size=10)
)
@settings(max_examples=100)
def test_hdfs_block_count_covers_file(sizes):
    devices = [make_hdd(name="dn0", capacity_bytes=100 * TB)]
    hdfs = Hdfs(devices=devices, replication=1)
    for index, size in enumerate(sizes):
        hdfs_file = hdfs.put(f"/f{index}", size)
        blocks = hdfs_file.num_blocks
        assert blocks * hdfs.block_size >= size
        assert (blocks - 1) * hdfs.block_size < size or blocks == 1
