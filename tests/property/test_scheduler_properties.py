"""Property-based tests for the job scheduler."""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.schedule.scheduler import (
    Job,
    fifo_order,
    oracle_order,
    simulate_queue,
    spjf_order,
)

job_sets = st.lists(
    st.tuples(
        st.floats(min_value=0.1, max_value=1000.0),  # true runtime
        st.floats(min_value=-0.2, max_value=0.2),  # prediction error
        st.floats(min_value=0.0, max_value=100.0),  # arrival
    ),
    min_size=1,
    max_size=8,
)


def build_jobs(specs, batch=True):
    jobs = []
    for index, (runtime, error, arrival) in enumerate(specs):
        jobs.append(
            Job(
                name=f"j{index}",
                true_runtime=runtime,
                predicted_runtime=runtime * (1.0 + error),
                arrival_time=0.0 if batch else arrival,
            )
        )
    return jobs


@given(specs=job_sets)
@settings(max_examples=200)
def test_all_jobs_scheduled_exactly_once(specs):
    jobs = build_jobs(specs)
    for policy in (fifo_order, spjf_order, oracle_order):
        result = simulate_queue(jobs, policy)
        assert sorted(s.job.name for s in result.scheduled) == sorted(
            j.name for j in jobs
        )


@given(specs=job_sets)
@settings(max_examples=200)
def test_no_overlap_and_no_idle_in_batch(specs):
    jobs = build_jobs(specs)
    result = simulate_queue(jobs, spjf_order)
    ordered = sorted(result.scheduled, key=lambda s: s.start_time)
    clock = 0.0
    for scheduled in ordered:
        assert scheduled.start_time >= clock - 1e-9
        # Batch queue: back-to-back execution, no idle gaps.
        assert scheduled.start_time <= clock + 1e-9
        clock = scheduled.finish_time


@given(specs=job_sets)
@settings(max_examples=200)
def test_makespan_policy_invariant_for_batches(specs):
    jobs = build_jobs(specs)
    makespans = {
        simulate_queue(jobs, policy).makespan
        for policy in (fifo_order, spjf_order, oracle_order)
    }
    total = sum(j.true_runtime for j in jobs)
    for makespan in makespans:
        assert abs(makespan - total) < 1e-6


@given(specs=job_sets)
@settings(max_examples=100)
def test_oracle_sjf_minimizes_mean_wait(specs):
    """SJF optimality: no permutation beats true-shortest-first."""
    jobs = build_jobs(specs)[:5]  # keep the permutation space small
    oracle = simulate_queue(jobs, oracle_order).mean_waiting_time
    for permutation in itertools.permutations(jobs):
        fixed = list(permutation)
        policy = lambda pending, fixed=fixed: [
            job for job in fixed if job in pending
        ]
        assert oracle <= simulate_queue(jobs, policy).mean_waiting_time + 1e-6


@given(specs=job_sets)
@settings(max_examples=200)
def test_spjf_never_worse_than_antisorted(specs):
    """Predictions with <=20% error still beat longest-first ordering."""
    jobs = build_jobs(specs)
    spjf = simulate_queue(jobs, spjf_order).mean_waiting_time
    longest_first = simulate_queue(
        jobs, lambda pending: sorted(
            pending, key=lambda j: -j.true_runtime
        )
    ).mean_waiting_time
    assert spjf <= longest_first + 1e-6


@given(specs=job_sets)
@settings(max_examples=100)
def test_waiting_times_non_negative_with_arrivals(specs):
    jobs = build_jobs(specs, batch=False)
    result = simulate_queue(jobs, spjf_order)
    for scheduled in result.scheduled:
        assert scheduled.waiting_time >= -1e-9
        assert scheduled.start_time >= scheduled.job.arrival_time - 1e-9
