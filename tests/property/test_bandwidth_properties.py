"""Property-based tests for the effective-bandwidth table."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bandwidth import EffectiveBandwidthTable

anchor_lists = st.lists(
    st.tuples(
        st.floats(min_value=1.0, max_value=1e9),
        st.floats(min_value=1.0, max_value=1e10),
    ),
    min_size=1,
    max_size=12,
    unique_by=lambda pair: pair[0],
)

request_sizes = st.floats(min_value=0.5, max_value=2e9)


@given(anchors=anchor_lists, request=request_sizes)
def test_bandwidth_within_anchor_envelope(anchors, request):
    """Interpolation never leaves the [min, max] anchor bandwidth range."""
    table = EffectiveBandwidthTable(anchors)
    bandwidths = [bw for _, bw in anchors]
    value = table.bandwidth(request)
    assert min(bandwidths) * (1 - 1e-9) <= value <= max(bandwidths) * (1 + 1e-9)


@given(anchors=anchor_lists, request=request_sizes)
def test_bandwidth_always_positive(anchors, request):
    table = EffectiveBandwidthTable(anchors)
    assert table.bandwidth(request) > 0


@given(anchors=anchor_lists)
def test_anchor_points_reproduced_exactly(anchors):
    table = EffectiveBandwidthTable(anchors)
    for size, bandwidth in anchors:
        assert math.isclose(table.bandwidth(size), bandwidth, rel_tol=1e-9)


@given(anchors=anchor_lists, a=request_sizes, b=request_sizes)
def test_monotone_when_anchors_monotone(anchors, a, b):
    """If anchors increase with size, so does the interpolated curve."""
    ordered = sorted(anchors)
    monotone = [
        (size, float(index + 1)) for index, (size, _) in enumerate(ordered)
    ]
    table = EffectiveBandwidthTable(monotone)
    low, high = min(a, b), max(a, b)
    assert table.bandwidth(low) <= table.bandwidth(high) * (1 + 1e-9)


@given(anchors=anchor_lists, factor=st.floats(min_value=0.01, max_value=100.0),
       request=request_sizes)
def test_scaling_is_multiplicative(anchors, factor, request):
    table = EffectiveBandwidthTable(anchors)
    scaled = table.scaled(factor)
    assert math.isclose(
        scaled.bandwidth(request), factor * table.bandwidth(request), rel_tol=1e-9
    )


@given(anchors=anchor_lists, ceiling=st.floats(min_value=1.0, max_value=1e10),
       request=request_sizes)
def test_cap_is_a_ceiling(anchors, ceiling, request):
    table = EffectiveBandwidthTable(anchors)
    capped = table.capped(ceiling)
    assert capped.bandwidth(request) <= ceiling * (1 + 1e-9)
    assert capped.bandwidth(request) <= table.bandwidth(request) * (1 + 1e-9)


@given(anchors=anchor_lists, iops=st.floats(min_value=0.1, max_value=1e6))
def test_iops_cap_binds_at_anchor_points(anchors, iops):
    table = EffectiveBandwidthTable(anchors)
    limited = table.iops_capped(iops)
    for size, _ in anchors:
        assert limited.bandwidth(size) <= iops * size * (1 + 1e-9)


@given(anchors=anchor_lists, request=request_sizes,
       total=st.floats(min_value=0.0, max_value=1e12))
@settings(max_examples=50)
def test_transfer_time_linear_in_bytes(anchors, request, total):
    table = EffectiveBandwidthTable(anchors)
    single = table.transfer_time(total, request)
    double = table.transfer_time(2 * total, request)
    assert math.isclose(double, 2 * single, rel_tol=1e-9, abs_tol=1e-12)
