"""Property-based tests for workload-spec invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.units import KB, MB
from repro.workloads.base import ChannelSpec, StageSpec, TaskGroupSpec

channel_strategy = st.builds(
    ChannelSpec,
    kind=st.sampled_from(
        ["hdfs_read", "shuffle_read", "persist_read"]
    ),
    bytes_per_task=st.floats(min_value=0.0, max_value=512 * MB),
    request_size=st.floats(min_value=4 * KB, max_value=128 * MB),
    per_core_throughput=st.one_of(
        st.none(), st.floats(min_value=1 * MB, max_value=500 * MB)
    ),
)

write_channel_strategy = st.builds(
    ChannelSpec,
    kind=st.sampled_from(["hdfs_write", "shuffle_write", "persist_write"]),
    bytes_per_task=st.floats(min_value=0.0, max_value=512 * MB),
    request_size=st.floats(min_value=4 * KB, max_value=128 * MB),
    per_core_throughput=st.one_of(
        st.none(), st.floats(min_value=1 * MB, max_value=500 * MB)
    ),
)

group_strategy = st.builds(
    TaskGroupSpec,
    name=st.sampled_from(["g1", "g2", "g3"]),
    count=st.integers(min_value=1, max_value=200),
    read_channels=st.lists(channel_strategy, max_size=2).map(tuple),
    compute_seconds=st.floats(min_value=0.0, max_value=100.0),
    write_channels=st.lists(write_channel_strategy, max_size=2).map(tuple),
    stream_chunks=st.integers(min_value=1, max_value=8),
    gc_coeff=st.floats(min_value=0.0, max_value=2.0),
)


def unique_groups(groups):
    seen = set()
    result = []
    for group in groups:
        if group.name not in seen:
            seen.add(group.name)
            result.append(group)
    return tuple(result)


stage_strategy = st.builds(
    StageSpec,
    name=st.just("stage"),
    groups=st.lists(group_strategy, min_size=1, max_size=3).map(unique_groups),
    repeat=st.integers(min_value=1, max_value=5),
    task_jitter=st.floats(min_value=0.0, max_value=0.4),
)


@given(stage=stage_strategy)
@settings(max_examples=150)
def test_build_tasks_count_matches_spec(stage):
    tasks = stage.build_tasks()
    assert len(tasks) == stage.tasks_per_execution
    assert stage.num_tasks == stage.tasks_per_execution * stage.repeat


@given(stage=stage_strategy, cores=st.integers(min_value=1, max_value=36))
@settings(max_examples=150)
def test_task_bytes_exactly_preserve_stage_totals(stage, cores):
    """Jitter and chunking never change a stage's total I/O volume."""
    tasks = stage.build_tasks(cores_per_node=cores)
    built_read = sum(t.io_bytes(is_write=False) for t in tasks)
    built_write = sum(t.io_bytes(is_write=True) for t in tasks)
    summary = stage.channel_summary()
    spec_read = sum(
        total for kind, (total, _) in summary.items() if kind.endswith("_read")
    ) / stage.repeat
    spec_write = sum(
        total for kind, (total, _) in summary.items() if kind.endswith("_write")
    ) / stage.repeat
    assert abs(built_read - spec_read) <= max(1e-6 * spec_read, 1e-3)
    assert abs(built_write - spec_write) <= max(1e-6 * spec_write, 1e-3)


@given(stage=stage_strategy)
@settings(max_examples=100)
def test_group_compute_totals_preserved(stage):
    """Per-group total compute is exactly the spec's (mean-preserving skew)."""
    tasks = stage.build_tasks()
    for group in stage.groups:
        built = sum(
            task.compute_seconds() for task in tasks if task.group == group.name
        )
        assert abs(built - group.compute_seconds * group.count) <= max(
            1e-6 * built, 1e-6
        )


@given(stage=stage_strategy, cores=st.integers(min_value=1, max_value=36))
@settings(max_examples=100)
def test_gc_metadata_consistent_with_compute(stage, cores):
    tasks = stage.build_tasks(cores_per_node=cores)
    for task in tasks:
        assert task.gc_seconds >= 0.0
        # GC stalls are part of the compute phases, never exceeding them.
        assert task.gc_seconds <= task.compute_seconds() + 1e-9


@given(stage=stage_strategy, offset=st.floats(min_value=0.0, max_value=1.0))
@settings(max_examples=100)
def test_jitter_offset_changes_schedule_not_volume(stage, offset):
    base = stage.build_tasks()
    shifted = stage.build_tasks(jitter_offset=offset)
    base_bytes = sum(t.io_bytes() for t in base)
    shifted_bytes = sum(t.io_bytes() for t in shifted)
    assert abs(base_bytes - shifted_bytes) <= max(1e-9 * base_bytes, 1e-6)
