"""Shared fixtures.

Expensive artifacts (profiling reports involve four simulated application
runs) are session-scoped so the suite stays fast.
"""

from __future__ import annotations

import pytest

from repro.cluster import HYBRID_CONFIGS, make_paper_cluster
from repro.core import Predictor, Profiler
from repro.storage import make_hdd, make_ssd
from repro.workloads import make_gatk4_workload


@pytest.fixture()
def hdd():
    """A fresh paper-calibrated HDD."""
    return make_hdd()


@pytest.fixture()
def ssd():
    """A fresh paper-calibrated SSD."""
    return make_ssd()


@pytest.fixture()
def ssd_cluster():
    """Three slaves, SSD for both roles (profiling-style cluster)."""
    return make_paper_cluster(3, HYBRID_CONFIGS[0])


@pytest.fixture()
def hdd_cluster():
    """Three slaves, HDD for both roles."""
    return make_paper_cluster(3, HYBRID_CONFIGS[3])


@pytest.fixture(scope="session")
def gatk4_workload():
    """The default GATK4 workload spec (immutable; share freely)."""
    return make_gatk4_workload()


@pytest.fixture(scope="session")
def gatk4_report(gatk4_workload):
    """A full four-sample-run profiling report for GATK4."""
    return Profiler(gatk4_workload, nodes=3).profile()


@pytest.fixture(scope="session")
def gatk4_predictor(gatk4_report):
    """Predictor built from the session profiling report."""
    return Predictor(gatk4_report)
