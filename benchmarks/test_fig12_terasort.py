"""Fig. 12: Terasort exp vs model (paper avg error 3.9%).

A shuffle-heavy two-stage sort of 930 GB; the paper reports a ~2.6x
HDD/SSD gap when switching the Spark-local device.
"""

from app_validation import (
    assert_within_paper_bound,
    render_validation,
    validate_application,
)
from conftest import run_once

from repro.cluster import HybridDiskConfig
from repro.workloads import make_terasort_workload


def test_fig12_terasort_accuracy(benchmark, emit, pipeline_cache):
    workload = make_terasort_workload()
    points = run_once(benchmark, lambda: validate_application(workload, pipeline_cache))
    emit("fig12_terasort", render_validation("Fig. 12", "Terasort", 3.9, points))
    assert_within_paper_bound(points)


def test_fig12_local_device_gap(benchmark, emit, measure_on_config):
    """HDD vs SSD as Spark-local, HDFS fixed at SSD (paper: 2.6x)."""
    workload = make_terasort_workload()

    def measure_gap():
        fast_local = HybridDiskConfig(0, hdfs_kind="ssd", local_kind="ssd")
        slow_local = HybridDiskConfig(0, hdfs_kind="ssd", local_kind="hdd")
        return {
            "SSD local": measure_on_config(fast_local, workload).total_seconds,
            "HDD local": measure_on_config(slow_local, workload).total_seconds,
        }

    times = run_once(benchmark, measure_gap)
    gap = times["HDD local"] / times["SSD local"]
    emit("fig12_terasort_gap", (
        f"Terasort total: SSD local {times['SSD local'] / 60:.1f} min,"
        f" HDD local {times['HDD local'] / 60:.1f} min -> {gap:.1f}x"
        " (paper: 2.6x)"
    ))
    assert 2.0 < gap < 4.5
