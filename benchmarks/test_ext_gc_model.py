"""Extension: the JVM GC model closes the paper's acknowledged MD gap.

Section V-A1: on SSDs "MD stage time does not scale [with P] ... because
the garbage collection time increases with larger P and dominates the
execution time of MD, which is currently not included in our model".
With :mod:`repro.core.gc` enabled the simulated MD curve flattens like the
paper's measurement, and the GC-aware profiler (a fifth constant read from
task metrics) predicts it within the usual error budget.
"""

from conftest import run_once

from repro.analysis.report import render_series
from repro.cluster import HYBRID_CONFIGS, make_paper_cluster
from repro.core import Predictor, Profiler
from repro.workloads.gatk4 import Gatk4Parameters, make_gatk4_workload
from repro.workloads.runner import measure_workload

CORE_SWEEP = (12, 24, 36)
GC_COEFF = 6.0


def test_ext_gc_flattens_md_on_ssd(benchmark, emit):
    def sweep():
        cluster = make_paper_cluster(3, HYBRID_CONFIGS[0])
        gc_free = make_gatk4_workload()
        gc_heavy = make_gatk4_workload(Gatk4Parameters(md_gc_coeff=GC_COEFF))
        rows = {"without GC model": [], "with GC model": []}
        for cores in CORE_SWEEP:
            rows["without GC model"].append(
                measure_workload(cluster, cores, gc_free).stage("MD").makespan
                / 60
            )
            rows["with GC model"].append(
                measure_workload(cluster, cores, gc_heavy).stage("MD").makespan
                / 60
            )
        return rows

    rows = run_once(benchmark, sweep)
    emit("ext_gc_md_flatness", render_series(
        "Extension: MD runtime (min) vs P on 2SSD, with and without the"
        f" GC model (gc_coeff={GC_COEFF}s)",
        "P", rows, CORE_SWEEP))

    clean = rows["without GC model"]
    gc = rows["with GC model"]
    # Without GC, MD scales ~linearly; with GC it flattens like Fig. 3.
    assert clean[0] / clean[-1] > 2.3
    assert gc[0] / gc[-1] < 1.6


def test_ext_gc_aware_profiler_accuracy(benchmark, emit):
    workload = make_gatk4_workload(Gatk4Parameters(md_gc_coeff=GC_COEFF))

    def fit_and_validate():
        report = Profiler(workload, nodes=3, fit_gc=True).profile()
        predictor = Predictor(report)
        cluster = make_paper_cluster(10, HYBRID_CONFIGS[0])
        errors = []
        for cores in CORE_SWEEP:
            measured = measure_workload(cluster, cores, workload)
            predicted = predictor.predict(cluster, cores)
            errors.append(
                abs(predicted.stage("MD").t_stage
                    - measured.stage("MD").makespan)
                / measured.stage("MD").makespan
            )
        return report.stage("MD").gc_coeff, errors

    fitted, errors = run_once(benchmark, fit_and_validate)
    emit("ext_gc_profiler", (
        f"GC-aware profiler: planted gc_coeff={GC_COEFF}s,"
        f" fitted={fitted:.2f}s; MD prediction errors at P={CORE_SWEEP}:"
        f" {', '.join(f'{e * 100:.1f}%' for e in errors)}"
    ))
    assert abs(fitted - GC_COEFF) / GC_COEFF < 0.05
    assert sum(errors) / len(errors) < 0.10
