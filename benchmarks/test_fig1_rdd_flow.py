"""Fig. 1: the Spark RDD flow of the GATK4 pipeline — executed for real.

A miniature GATK4 is built on the functional engine with the same lineage
shape as Fig. 1: reads are loaded, grouped by alignment (the MD
groupByKey), duplicates marked; the marked reads form a UnionRDD with the
non-primary scan, and both BR-like and SF-like actions consume it.  The
bench prints the planned stage DAG and checks the structure: one shuffle,
stages split at it, and the union consumed twice without re-shuffling.
"""

from conftest import run_once

from repro.analysis.report import render_table
from repro.spark.context import DoppioContext
from repro.spark.dag import build_stages, shuffle_dependencies
from repro.workloads.generators import generate_genome_reads


def build_mini_gatk4():
    sc = DoppioContext()
    reads = generate_genome_reads(1200, duplicate_fraction=0.25, seed=31)
    initial_reads = sc.parallelize(reads, 12)

    # MD: group by alignment position, mark duplicates.
    keyed = initial_reads.key_by(lambda read: (read[0], read[1]))
    grouped = keyed.group_by_key(8)

    def mark(pair):
        _, group = pair
        return [(read, index > 0) for index, read in enumerate(group)]

    primary = grouped.flat_map(mark)
    non_primary = initial_reads.filter(lambda read: read[1] % 97 == 0).map(
        lambda read: (read, False)
    )
    marked_reads = primary.union(non_primary)  # the Fig. 1 UnionRDD

    # BR-like action: aggregate statistics over markedReads.
    br_count = marked_reads.filter(lambda pair: not pair[1]).count()
    # SF-like action: consume markedReads again.
    sf_rows = marked_reads.count()
    return sc, marked_reads, br_count, sf_rows, reads


def test_fig1_pipeline_structure(benchmark, emit):
    sc, marked_reads, br_count, sf_rows, reads = run_once(
        benchmark, build_mini_gatk4
    )

    stages = build_stages(marked_reads)
    rows = [
        [stage.stage_id, stage.name, stage.num_tasks,
         "shuffle" if not stage.is_result_stage else "result"]
        for stage in stages
    ]
    emit("fig1_rdd_flow", render_table(
        "Fig. 1: planned stage DAG of the mini-GATK4 lineage"
        f" (BR consumed {br_count} unique reads; SF saved {sf_rows} rows)",
        ["stage", "name", "tasks", "kind"], rows))

    # One shuffle (the MD groupByKey) splits the lineage in two stages.
    assert len(shuffle_dependencies(marked_reads)) == 1
    assert len(stages) == 2
    assert stages[0].name == "map-stage(groupByKey)"
    # Both actions consumed the union; duplicates were really marked.
    # Non-duplicates = one per unique alignment position (primary branch)
    # plus every read the non-primary filter kept (all unmarked).
    positions = [(chrom, pos) for chrom, pos, _ in reads]
    non_primary_kept = sum(1 for _, pos, _ in reads if pos % 97 == 0)
    assert br_count == len(set(positions)) + non_primary_kept
    assert sf_rows == len(reads) + non_primary_kept


def test_fig1_shuffle_materialized_once(benchmark, emit):
    def run():
        sc, marked_reads, _, _, _ = build_mini_gatk4()
        map_stages = [
            p for p in sc.stage_profiles if p.shuffle_write_bytes > 0
        ]
        return len(map_stages)

    map_stage_count = run_once(benchmark, run)
    emit("fig1_shuffle_reuse", (
        "Fig. 1: the MD shuffle is materialized once and re-read by both"
        f" BR and SF actions (map stages executed: {map_stage_count})"
    ))
    # Two actions over the same lineage, but only ONE map stage ran: the
    # shuffle files are reused, exactly Spark's behaviour.
    assert map_stage_count == 1
