"""Fig. 14: model validation on (simulated) Google Cloud.

Ten workers, 16 vCPU, 1 TB HDD HDFS; the HDD Spark-local size sweeps
upward.  Measured ("exp": the simulator on virtual-disk models) and
predicted runtimes are compared — the paper reports <4% average error and
a curve that falls then flattens.
"""

from conftest import run_once

from repro.analysis.errors import ExpVsModel, average_error, error_summary
from repro.analysis.report import render_series
from repro.cloud import make_persistent_disk
from repro.cluster.cluster import Cluster
from repro.cluster.node import Node
from repro.units import GB
from repro.workloads.runner import measure_workload

SIZE_SWEEP = (200, 500, 1000, 2000, 4000)


def _cloud_cluster(local_gb: float) -> Cluster:
    slaves = [
        Node(
            name=f"w{i}",
            num_cores=16,
            ram_bytes=60 * GB,
            hdfs_device=make_persistent_disk("pd-standard", 1000,
                                             name=f"w{i}-hdfs"),
            local_device=make_persistent_disk("pd-standard", local_gb,
                                              name=f"w{i}-local"),
        )
        for i in range(10)
    ]
    return Cluster(slaves=slaves)


def test_fig14_runtime_vs_local_size(benchmark, emit, gatk4_workload,
                                     gatk4_predictor):
    def sweep():
        measured, predicted = [], []
        for local_gb in SIZE_SWEEP:
            cluster = _cloud_cluster(local_gb)
            measured.append(
                measure_workload(cluster, 16, gatk4_workload).total_seconds
            )
            predicted.append(gatk4_predictor.predict_runtime(cluster, 16))
        return measured, predicted

    measured, predicted = run_once(benchmark, sweep)
    points = [
        ExpVsModel(label=f"{size}GB", measured=m, predicted=p)
        for size, m, p in zip(SIZE_SWEEP, measured, predicted)
    ]
    from repro.analysis.figures import render_sparkline

    emit("fig14_gcloud_validation", render_series(
        "Fig. 14: GATK4 runtime (min) vs HDD Spark-local size, 16 vCPU x10,"
        f" HDFS=1TB HDD — {error_summary(points)} (paper avg: <4%)",
        "local GB",
        {"exp": [m / 60 for m in measured],
         "model": [p / 60 for p in predicted]},
        SIZE_SWEEP)
        + f"\nshape: exp {render_sparkline(measured)}"
        + f"  model {render_sparkline(predicted)}")

    # Paper: <4% average error on this sweep; we allow 10% (the model's
    # overall claim).
    assert average_error(points) < 0.10
    # Runtime decreases with size, then flattens at the IOPS cap.
    assert measured[0] > measured[-1]
    assert all(a >= b - 1e-6 for a, b in zip(predicted, predicted[1:]))
    assert predicted[-2] / predicted[-1] < 1.35
