"""Fig. 7: GATK4 measured vs model-predicted runtimes, ten slaves.

Setting: N = 10, P in {6, 12, 24}, 2SSD and 2HDD configurations.  The
paper reports an average error below 6%.
"""

from conftest import run_once

from repro.analysis.errors import ExpVsModel, average_error, error_summary
from repro.analysis.report import render_table
from repro.cluster import HYBRID_CONFIGS
from repro.pipeline import ClusterPlatform, Experiment

CORE_SWEEP = (6, 12, 24)


def test_fig7_model_accuracy(benchmark, emit, gatk4_source, pipeline_cache):
    def validate():
        points = []
        for config in (HYBRID_CONFIGS[0], HYBRID_CONFIGS[3]):
            experiment = Experiment(
                gatk4_source,
                ClusterPlatform.from_config(config),
                cache=pipeline_cache,
            )
            for cores in CORE_SWEEP:
                result = experiment.run(10, cores)
                for stage in result.stages:
                    points.append(
                        ExpVsModel(
                            label=f"{config.shorthand} {stage.name} P={cores}",
                            measured=stage.measured_seconds,
                            predicted=stage.predicted_seconds,
                        )
                    )
        return points

    points = run_once(benchmark, validate)
    rows = [
        [p.label, f"{p.measured / 60:.1f}", f"{p.predicted / 60:.1f}",
         f"{p.error * 100:.1f}%"]
        for p in points
    ]
    emit("fig7_gatk4_model_accuracy", render_table(
        "Fig. 7: GATK4 exp vs model (minutes), N=10 — " + error_summary(points),
        ["point", "exp", "model", "error"], rows))

    # The paper quotes <6% average error; hold ourselves to the same.
    assert average_error(points) < 0.06
