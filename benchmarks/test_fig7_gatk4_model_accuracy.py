"""Fig. 7: GATK4 measured vs model-predicted runtimes, ten slaves.

Setting: N = 10, P in {6, 12, 24}, 2SSD and 2HDD configurations.  The
paper reports an average error below 6%.
"""

from conftest import run_once

from repro.analysis.errors import ExpVsModel, average_error, error_summary
from repro.analysis.report import render_table
from repro.cluster import HYBRID_CONFIGS, make_paper_cluster
from repro.workloads.runner import measure_workload

CORE_SWEEP = (6, 12, 24)


def test_fig7_model_accuracy(benchmark, emit, gatk4_workload, gatk4_predictor):
    def validate():
        points = []
        for config in (HYBRID_CONFIGS[0], HYBRID_CONFIGS[3]):
            cluster = make_paper_cluster(10, config)
            model = gatk4_predictor.model_for_cluster(cluster)
            for cores in CORE_SWEEP:
                measured = measure_workload(cluster, cores, gatk4_workload)
                predicted = model.predict(10, cores)
                for stage in gatk4_workload.stages:
                    points.append(
                        ExpVsModel(
                            label=f"{config.shorthand} {stage.name} P={cores}",
                            measured=measured.stage(stage.name).makespan,
                            predicted=predicted.stage(stage.name).t_stage,
                        )
                    )
        return points

    points = run_once(benchmark, validate)
    rows = [
        [p.label, f"{p.measured / 60:.1f}", f"{p.predicted / 60:.1f}",
         f"{p.error * 100:.1f}%"]
        for p in points
    ]
    emit("fig7_gatk4_model_accuracy", render_table(
        "Fig. 7: GATK4 exp vs model (minutes), N=10 — " + error_summary(points),
        ["point", "exp", "model", "error"], rows))

    # The paper quotes <6% average error; hold ourselves to the same.
    assert average_error(points) < 0.06
