"""Tables I-III: testbed, Spark/HDFS configuration, hybrid disk placements."""

from conftest import run_once

from repro.analysis.report import render_table
from repro.cluster import HYBRID_CONFIGS, make_paper_cluster
from repro.spark.conf import PAPER_SPARK_CONF
from repro.units import GB, MB, TB, fmt_bytes


def test_table1_node_configuration(benchmark, emit):
    def build():
        return make_paper_cluster(3, HYBRID_CONFIGS[0])

    cluster = run_once(benchmark, build)
    node = cluster.slaves[0]
    rows = [
        ["CPU cores", node.num_cores],
        ["RAM size", fmt_bytes(node.ram_bytes)],
        ["Network", "10Gb/s"],
        ["HDD capacity", fmt_bytes(4 * TB)],
        ["SSD capacity", fmt_bytes(240 * GB)],
    ]
    emit("table1_node_config", render_table("Table I: node configuration",
                                            ["item", "value"], rows))
    assert node.num_cores == 36
    assert node.ram_bytes == 128 * GB


def test_table2_spark_hdfs_configuration(benchmark, emit):
    def build():
        cluster = make_paper_cluster(3, HYBRID_CONFIGS[0])
        return cluster.hdfs, PAPER_SPARK_CONF

    hdfs, conf = run_once(benchmark, build)
    rows = [
        ["SPARK_WORKER_CORES", conf.worker_cores],
        ["SPARK_WORKER_MEMORY", fmt_bytes(conf.worker_memory_bytes)],
        ["storage memory fraction", conf.storage_memory_fraction],
        ["dfs.blocksize", fmt_bytes(hdfs.block_size)],
        ["dfs.replication", hdfs.replication],
    ]
    emit("table2_spark_hdfs_config", render_table(
        "Table II: Spark and HDFS configuration", ["key", "value"], rows))
    assert hdfs.block_size == 128 * MB
    assert hdfs.replication == 2
    assert conf.worker_memory_bytes == 90 * GB


def test_table3_hybrid_configurations(benchmark, emit):
    def build():
        return [make_paper_cluster(1, config) for config in HYBRID_CONFIGS]

    clusters = run_once(benchmark, build)
    rows = []
    for config, cluster in zip(HYBRID_CONFIGS, clusters):
        node = cluster.slaves[0]
        rows.append(
            [config.config_id, node.hdfs_device.kind.upper(),
             node.local_device.kind.upper(), config.shorthand]
        )
    emit("table3_hybrid_configs", render_table(
        "Table III: hybrid configurations of HDDs and SSDs",
        ["config", "HDFS", "Local (spark.local.dir)", "shorthand"], rows))
    assert [row[1] for row in rows] == ["SSD", "HDD", "SSD", "HDD"]
    assert [row[2] for row in rows] == ["SSD", "SSD", "HDD", "HDD"]
