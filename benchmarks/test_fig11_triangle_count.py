"""Fig. 11: Triangle Count exp vs model (paper avg error 3.6%).

The computeTriangleCount phase canonicalizes the graph via a 396 GB
repartition shuffle; the paper reports a 6.5x HDD/SSD gap on it.
"""

from app_validation import (
    assert_within_paper_bound,
    render_validation,
    validate_application,
)
from conftest import run_once

from repro.workloads import make_triangle_count_workload


def test_fig11_triangle_count_accuracy(benchmark, emit, pipeline_cache):
    workload = make_triangle_count_workload()
    points = run_once(benchmark, lambda: validate_application(workload, pipeline_cache))
    emit("fig11_triangle_count", render_validation(
        "Fig. 11", "TriangleCount", 3.6, points))
    assert_within_paper_bound(points)


def test_fig11_compute_phase_gap(benchmark, emit, hdd_ssd_phase_times):
    """The computeTriangleCount phase's HDD/SSD gap (paper: 6.5x)."""
    workload = make_triangle_count_workload()

    times = run_once(
        benchmark,
        lambda: hdd_ssd_phase_times(
            workload, phase_group="computeTriangleCount"
        ),
    )
    gap = times["2HDD"] / times["2SSD"]
    emit("fig11_tc_gap", (
        f"TriangleCount computeTriangleCount phase: SSD"
        f" {times['2SSD'] / 60:.1f} min, HDD {times['2HDD'] / 60:.1f} min ->"
        f" {gap:.1f}x (paper: 6.5x)"
    ))
    assert 4.5 < gap < 8.5
