"""Fig. 13: genome-sequencing cost across HDD disk sizes, vs R1 and R2.

The paper fixes DiskTypes = HDD, explores HDFS/local sizes at 16 vCPU, and
finds an optimum far below the Spark-website (R1, 8 TB) and Cloudera (R2,
16 TB) provisioning rules — 32% and 52% cheaper in their estimate.
"""

from conftest import run_once

from repro.analysis.report import render_series, render_table
from repro.cloud import (
    r1_spark_recommendation,
    r2_cloudera_recommendation,
)

SIZE_SWEEP = (200, 500, 1000, 2000, 3000, 4000)


def test_fig13a_cost_vs_local_size(benchmark, emit, gatk4_optimizer):
    optimizer = gatk4_optimizer

    def sweep():
        costs, runtimes = [], []
        for local_gb in SIZE_SWEEP:
            evaluated = optimizer.evaluate(
                optimizer.make_config(16, "pd-standard", 1000,
                                      "pd-standard", local_gb)
            )
            costs.append(evaluated.cost_dollars)
            runtimes.append(evaluated.runtime_seconds / 60)
        return costs, runtimes

    costs, runtimes = run_once(benchmark, sweep)
    emit("fig13a_cost_vs_local_hdd_size", render_series(
        "Fig. 13a: cost ($) and runtime (min) vs Spark-local HDD size"
        " (HDFS = 1TB HDD, 16 vCPU x10)",
        "local GB", {"cost $": costs, "runtime min": runtimes}, SIZE_SWEEP,
        value_format="{:.2f}"))
    # The cost curve is U-shaped-ish/flattening: tiny disks pay in runtime.
    assert costs[0] > min(costs)


def test_fig13b_cost_vs_hdfs_size(benchmark, emit, gatk4_optimizer):
    optimizer = gatk4_optimizer

    def sweep():
        best_local = 2000
        costs = []
        for hdfs_gb in SIZE_SWEEP:
            if hdfs_gb < optimizer.min_hdfs_gb:
                costs.append(float("nan"))
                continue
            evaluated = optimizer.evaluate(
                optimizer.make_config(16, "pd-standard", hdfs_gb,
                                      "pd-standard", best_local)
            )
            costs.append(evaluated.cost_dollars)
        return costs

    costs = run_once(benchmark, sweep)
    emit("fig13b_cost_vs_hdfs_hdd_size", render_series(
        "Fig. 13b: cost ($) vs HDFS HDD size (local = 2TB HDD, 16 vCPU x10)",
        "HDFS GB", {"cost $": costs}, SIZE_SWEEP, value_format="{:.2f}"))


def test_fig13_optimum_vs_r1_r2(benchmark, emit, gatk4_optimizer):
    optimizer = gatk4_optimizer

    def search():
        hdd_only = optimizer.grid_search(
            vcpu_grid=(8, 16, 32), disk_kinds=("pd-standard",)
        )
        r1 = optimizer.evaluate(r1_spark_recommendation())
        r2 = optimizer.evaluate(r2_cloudera_recommendation())
        return hdd_only, r1, r2

    hdd_only, r1, r2 = run_once(benchmark, search)
    rows = [
        ["R1 (Spark website, 8TB)", f"${r1.cost_dollars:.2f}",
         f"{r1.runtime_seconds / 60:.0f} min", "$6.06 (paper)"],
        ["R2 (Cloudera, 16TB)", f"${r2.cost_dollars:.2f}",
         f"{r2.runtime_seconds / 60:.0f} min", "$8.65 (paper)"],
        ["model-chosen HDD optimum", f"${hdd_only.best.cost_dollars:.2f}",
         f"{hdd_only.best.runtime_seconds / 60:.0f} min", "$4.12 (paper)"],
        ["savings vs R1", f"{hdd_only.savings_versus(r1) * 100:.0f}%", "",
         "32% (paper)"],
        ["savings vs R2", f"{hdd_only.savings_versus(r2) * 100:.0f}%", "",
         "52% (paper)"],
    ]
    emit("fig13_hdd_optimum", render_table(
        "Fig. 13: HDD-only cost optimization vs recommended configs"
        f" (optimum: {hdd_only.best.config.label()})",
        ["configuration", "cost", "runtime", "paper"], rows))
    assert hdd_only.best.cost_dollars < r1.cost_dollars
    assert hdd_only.best.cost_dollars < r2.cost_dollars
    assert hdd_only.savings_versus(r2) > 0.35
