"""Ablations: what each ingredient of the I/O-aware model buys.

Three design choices the paper argues for, each removed in turn and
scored against the simulator on GATK4's BR stage (2HDD, ten slaves,
P = 36) — the operating point where shuffle read dominates:

1. **request-size-aware bandwidth** vs a single peak-bandwidth number;
2. **max(scale, io)** (compute/I-O overlap) vs summing the terms;
3. **device-level bandwidth sharing** vs assuming every core keeps its
   uncontended throughput ``T``.
"""

from conftest import run_once

from repro.analysis.report import render_table
from repro.cluster import HYBRID_CONFIGS, make_paper_cluster
from repro.units import MB
from repro.workloads.runner import measure_workload

NODES, CORES = 10, 36


def _br_ground_truth(gatk4_workload):
    cluster = make_paper_cluster(NODES, HYBRID_CONFIGS[3])
    return measure_workload(cluster, CORES, gatk4_workload).stage("BR").makespan


def test_ablation_request_size_awareness(benchmark, emit, gatk4_workload,
                                         gatk4_predictor):
    """Peak-bandwidth models miss the 30 KB shuffle reads by ~10x."""

    def evaluate():
        measured = _br_ground_truth(gatk4_workload)
        cluster = make_paper_cluster(NODES, HYBRID_CONFIGS[3])
        full_model = gatk4_predictor.model_for_cluster(cluster)
        full = full_model.stage("BR").predict(NODES, CORES)

        # Ablated: same structure, but the shuffle-read floor computed at
        # the HDD's peak (sequential) bandwidth instead of BW(30 KB).
        hdd = cluster.slaves[0].local_device
        peak = hdd.read_table.peak_bandwidth
        profile = gatk4_predictor.report.stage("BR")
        shuffle_bytes = next(
            ch.total_bytes for ch in profile.channels
            if ch.kind == "shuffle_read"
        )
        ablated_floor = shuffle_bytes / (NODES * peak) + profile.t_avg
        return measured, full.t_stage, ablated_floor, peak

    measured, full, ablated, peak = run_once(benchmark, evaluate)
    rows = [
        ["simulated (exp)", f"{measured / 60:.0f} min", ""],
        ["full model", f"{full / 60:.0f} min",
         f"{abs(full - measured) / measured * 100:.0f}% err"],
        [f"peak-BW model ({peak / MB:.0f}MB/s)", f"{ablated / 60:.0f} min",
         f"{abs(ablated - measured) / measured * 100:.0f}% err"],
    ]
    emit("ablation_request_size", render_table(
        "Ablation 1: request-size-aware bandwidth (GATK4 BR, 2HDD, P=36)",
        ["estimate", "runtime", "error"], rows))
    assert abs(full - measured) / measured < 0.10
    # Ignoring request sizes underestimates the stage by many-fold.
    assert ablated < 0.2 * measured


def test_ablation_overlap_max_vs_sum(benchmark, emit, gatk4_workload,
                                     gatk4_predictor):
    """Summing compute and I/O (no overlap) overestimates I/O-bound stages.

    Evaluated at P = 12, where the scale term is still a large fraction of
    the I/O floor — the point where overlap matters most.
    """
    cores = 12

    def evaluate():
        cluster = make_paper_cluster(NODES, HYBRID_CONFIGS[3])
        measured = measure_workload(
            cluster, cores, gatk4_workload
        ).stage("BR").makespan
        model = gatk4_predictor.model_for_cluster(cluster).stage("BR")
        prediction = model.predict(NODES, cores)
        summed = (
            prediction.t_scale
            + prediction.t_read_limit
            + prediction.t_write_limit
        )
        return measured, prediction.t_stage, summed

    measured, maxed, summed = run_once(benchmark, evaluate)
    rows = [
        ["simulated (exp)", f"{measured / 60:.0f} min", ""],
        ["max(terms) — the paper", f"{maxed / 60:.0f} min",
         f"{abs(maxed - measured) / measured * 100:.0f}% err"],
        ["sum(terms) — no overlap", f"{summed / 60:.0f} min",
         f"{abs(summed - measured) / measured * 100:.0f}% err"],
    ]
    emit("ablation_overlap", render_table(
        "Ablation 2: compute/I-O overlap via max() (GATK4 BR, 2HDD, P=12)",
        ["estimate", "runtime", "error"], rows))
    assert abs(maxed - measured) / measured < 0.10
    assert summed > 1.2 * measured


def test_ablation_contention_awareness(benchmark, emit, gatk4_workload,
                                       gatk4_predictor):
    """Assuming per-core throughput T scales with P misses the break point."""

    def evaluate():
        measured = _br_ground_truth(gatk4_workload)
        profile = gatk4_predictor.report.stage("BR")
        # Ablated: t_scale only — every core sustains its uncontended
        # t_avg regardless of the device (no bandwidth ceiling at all).
        no_contention = (
            profile.num_tasks / (NODES * CORES) * profile.t_avg
            + profile.delta_scale
        )
        cluster = make_paper_cluster(NODES, HYBRID_CONFIGS[3])
        full = (
            gatk4_predictor.model_for_cluster(cluster)
            .stage("BR")
            .runtime(NODES, CORES)
        )
        return measured, full, no_contention

    measured, full, ablated = run_once(benchmark, evaluate)
    rows = [
        ["simulated (exp)", f"{measured / 60:.0f} min", ""],
        ["full model", f"{full / 60:.0f} min",
         f"{abs(full - measured) / measured * 100:.0f}% err"],
        ["contention-blind (t_scale only)", f"{ablated / 60:.0f} min",
         f"{abs(ablated - measured) / measured * 100:.0f}% err"],
    ]
    emit("ablation_contention", render_table(
        "Ablation 3: bandwidth contention / break point (GATK4 BR, 2HDD, P=36)",
        ["estimate", "runtime", "error"], rows))
    assert abs(full - measured) / measured < 0.10
    assert ablated < 0.5 * measured
