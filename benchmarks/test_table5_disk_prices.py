"""Table V: disk prices in the Google Cloud platform."""

import pytest
from conftest import run_once

from repro.analysis.report import render_table
from repro.cloud.pricing import DISK_PRICE_PER_GB_MONTH, disk_price_ratio


def test_table5_prices(benchmark, emit):
    def build():
        return dict(DISK_PRICE_PER_GB_MONTH), disk_price_ratio()

    prices, ratio = run_once(benchmark, build)
    rows = [
        ["Standard provisioned space", f"${prices['pd-standard']:.3f}"],
        ["SSD provisioned space", f"${prices['pd-ssd']:.3f}"],
        ["SSD / standard ratio", f"{ratio:.2f}x (paper: 4.2x)"],
    ]
    emit("table5_disk_prices", render_table(
        "Table V: disk price in Google Cloud (per GB/month)",
        ["type", "price"], rows))
    assert prices["pd-standard"] == 0.040
    assert prices["pd-ssd"] == 0.170
    assert ratio == pytest.approx(4.25, abs=0.1)
