"""Compatibility entry point for the benchmark suite.

The scenarios that used to live inline here are now registered
:class:`~repro.bench.registry.BenchmarkSection` plugins in
:mod:`repro.bench.sections` — engine, cache, search, resilience,
parallel, vectorized — with the same metrics, the same correctness
asserts, and every guard threshold preserved as a section-level floor.
This file stays as the historical CLI so existing invocations (and the
CI "Perf regression guard" step) keep working unchanged::

    PYTHONPATH=src python benchmarks/perf_simulator.py          # refresh
    PYTHONPATH=src python benchmarks/perf_simulator.py --check  # CI guard

``--check`` reruns everything and compares against the committed
``BENCH_simulator.json``: simulated numbers must match exactly (the
engine is deterministic), wall times may not regress beyond a generous
tolerance, and the cache speedups must stay at least 2x.

The new interface — trajectory history, host-fingerprinted statistical
gates, per-section selection — is ``python -m repro bench``; see
docs/BENCHMARKS.md.

Not collected by pytest (no ``test_`` prefix); it is a standalone script
so the tier-1 suite stays fast.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.legacy import check, collect, main  # noqa: E402,F401

if __name__ == "__main__":
    raise SystemExit(main())
