"""Microbenchmark for the simulation engine's event loop.

Times the GATK4 MarkDuplicates stage (973 tasks) on the paper's ten-slave
cfg1 cluster at 24 cores per node — the heaviest single-stage simulation in
the validation suite — and writes the result to ``BENCH_simulator.json`` at
the repo root so the performance trajectory is tracked across PRs.

Run with::

    PYTHONPATH=src python benchmarks/perf_simulator.py

Not collected by pytest (no ``test_`` prefix); it is a standalone script so
the tier-1 suite stays fast.
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

from repro.cluster import HYBRID_CONFIGS, make_paper_cluster
from repro.simulator.engine import SimulationEngine
from repro.workloads import make_gatk4_workload

NUM_SLAVES = 10
CORES_PER_NODE = 24
ROUNDS = 3

# Wall time of the same scenario under the O(active)-scan event loop that
# predates the indexed event heap, measured on the reference container when
# the heap landed.  Kept as a fixed baseline so the speedup column stays
# meaningful without checking out old revisions.
SCAN_LOOP_BASELINE_SECONDS = 0.777


def run_once() -> tuple[float, float]:
    """Build and run the MD stage once; returns (wall seconds, makespan)."""
    spec = make_gatk4_workload().stages[0]
    cluster = make_paper_cluster(NUM_SLAVES, HYBRID_CONFIGS[0])
    tasks = spec.build_tasks(cores_per_node=CORES_PER_NODE, jitter_offset=0.0)
    engine = SimulationEngine(cluster, cores_per_node=CORES_PER_NODE)
    start = time.perf_counter()
    makespan = engine.run(tasks)
    return time.perf_counter() - start, makespan


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_simulator.json",
        help="where to write the JSON result",
    )
    parser.add_argument("--rounds", type=int, default=ROUNDS)
    args = parser.parse_args(argv)

    walls = []
    makespan = None
    for _ in range(max(1, args.rounds)):
        wall, makespan = run_once()
        walls.append(wall)
    best = min(walls)

    result = {
        "benchmark": "gatk4-md-stage",
        "num_slaves": NUM_SLAVES,
        "cores_per_node": CORES_PER_NODE,
        "rounds": len(walls),
        "wall_seconds_best": round(best, 4),
        "wall_seconds_all": [round(w, 4) for w in walls],
        "simulated_makespan_seconds": makespan,
        "scan_loop_baseline_seconds": SCAN_LOOP_BASELINE_SECONDS,
        "speedup_vs_scan_loop": round(SCAN_LOOP_BASELINE_SECONDS / best, 2),
        "python": platform.python_version(),
    }
    args.output.write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result, indent=2))
    print(f"[saved to {args.output}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
