"""Performance benchmarks for the simulator and the experiment pipeline.

Three scenarios, written to ``BENCH_simulator.json`` at the repo root so
the performance trajectory is tracked across PRs:

- ``gatk4-md-stage`` — the GATK4 MarkDuplicates stage (973 tasks) on the
  paper's ten-slave cfg1 cluster at 24 cores per node: the heaviest
  single-stage simulation in the validation suite, timing the raw event
  loop.
- ``core_sweep`` — the Fig. 3 core-scaling sweep (2SSD, P = 12/24/36) run
  cold and then warm through a shared pipeline result cache.
- ``optimizer_search`` — the Fig. 13/15 grid search (8/16/32 vCPU, both
  disk kinds) cold and warm through the same cache.
- ``resilience`` — the MD stage under a 2.5x straggler, unmitigated vs
  speculation + blacklisting, plus the armed-but-idle overhead on a
  clean run (guarded below 5%).

Run with::

    PYTHONPATH=src python benchmarks/perf_simulator.py          # refresh
    PYTHONPATH=src python benchmarks/perf_simulator.py --check  # CI guard

``--check`` reruns everything and compares against the committed JSON:
simulated numbers must match exactly (the engine is deterministic), wall
times may not regress beyond a generous tolerance, and the cache speedups
must stay at least 2x.

Not collected by pytest (no ``test_`` prefix); it is a standalone script
so the tier-1 suite stays fast.
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

from repro.analysis.sweep import sweep_cores
from repro.cloud.optimizer import CostOptimizer
from repro.cluster import HYBRID_CONFIGS, make_paper_cluster
from repro.core import Predictor, Profiler
from repro.faults import FaultPlan, StragglerFault
from repro.pipeline import ResultCache
from repro.resilience import (
    BlacklistPolicy,
    ResiliencePolicy,
    SpeculationPolicy,
    merge_summaries,
)
from repro.simulator.engine import SimulationEngine
from repro.workloads import make_gatk4_workload
from repro.workloads.base import WorkloadSpec
from repro.workloads.runner import measure_workload

NUM_SLAVES = 10
CORES_PER_NODE = 24
ROUNDS = 3

#: Fig. 3 setting: the 3-slave motivation cluster, 2SSD placement.
SWEEP_SLAVES = 3
SWEEP_CORES = (12, 24, 36)

#: Fig. 13/15 search grid (the benchmark suite's vcpu grid).
SEARCH_VCPUS = (8, 16, 32)

# Wall time of the same scenario under the O(active)-scan event loop that
# predates the indexed event heap, measured on the reference container when
# the heap landed.  Kept as a fixed baseline so the speedup column stays
# meaningful without checking out old revisions.
SCAN_LOOP_BASELINE_SECONDS = 0.777

#: ``--check`` allows fresh wall times up to this multiple of the recorded
#: ones — generous, because CI machines are noisy; catching order-of-
#: magnitude regressions is the goal.
WALL_TOLERANCE = 4.0

#: Minimum cold/warm speedup the result cache must deliver.
MIN_CACHE_SPEEDUP = 2.0

#: The resilience scenario's straggler severity (matches the shipped
#: example plan family) and the ceiling on what an armed-but-idle
#: speculation policy may cost a clean run.
STRAGGLER_SLOWDOWN = 2.5
MAX_CLEAN_SPECULATION_OVERHEAD = 0.05


def run_once() -> tuple[float, float]:
    """Build and run the MD stage once; returns (wall seconds, makespan)."""
    spec = make_gatk4_workload().stages[0]
    cluster = make_paper_cluster(NUM_SLAVES, HYBRID_CONFIGS[0])
    tasks = spec.build_tasks(cores_per_node=CORES_PER_NODE, jitter_offset=0.0)
    engine = SimulationEngine(cluster, cores_per_node=CORES_PER_NODE)
    start = time.perf_counter()
    makespan = engine.run(tasks)
    return time.perf_counter() - start, makespan


def bench_md_stage(rounds: int) -> dict:
    """The historical event-loop microbenchmark (fields kept stable)."""
    walls = []
    makespan = None
    for _ in range(max(1, rounds)):
        wall, makespan = run_once()
        walls.append(wall)
    best = min(walls)
    return {
        "benchmark": "gatk4-md-stage",
        "num_slaves": NUM_SLAVES,
        "cores_per_node": CORES_PER_NODE,
        "rounds": len(walls),
        "wall_seconds_best": round(best, 4),
        "wall_seconds_all": [round(w, 4) for w in walls],
        "simulated_makespan_seconds": makespan,
        "scan_loop_baseline_seconds": SCAN_LOOP_BASELINE_SECONDS,
        "speedup_vs_scan_loop": round(SCAN_LOOP_BASELINE_SECONDS / best, 2),
        "python": platform.python_version(),
    }


def bench_core_sweep() -> dict:
    """Fig. 3 sweep, cold then warm through one result cache."""
    workload = make_gatk4_workload()
    predictor = Predictor(Profiler(workload, nodes=3).profile())
    cluster = make_paper_cluster(SWEEP_SLAVES, HYBRID_CONFIGS[0])
    cache = ResultCache()

    start = time.perf_counter()
    cold_points = sweep_cores(workload, predictor, cluster, SWEEP_CORES, cache)
    cold_wall = time.perf_counter() - start

    start = time.perf_counter()
    warm_points = sweep_cores(workload, predictor, cluster, SWEEP_CORES, cache)
    warm_wall = time.perf_counter() - start

    assert [p.total.measured for p in warm_points] == [
        p.total.measured for p in cold_points
    ], "cache hits must be bit-identical"
    return {
        "benchmark": "fig3-core-sweep",
        "num_slaves": SWEEP_SLAVES,
        "core_counts": list(SWEEP_CORES),
        "total_seconds_per_p": [p.total.measured for p in cold_points],
        "cold_wall_seconds": round(cold_wall, 4),
        "warm_wall_seconds": round(warm_wall, 4),
        "cache_speedup": round(cold_wall / warm_wall, 2),
        "cache_stats": cache.stats_summary(),
    }


def bench_optimizer_search() -> dict:
    """Fig. 13/15 grid search, cold then warm through one result cache."""
    workload = make_gatk4_workload()
    predictor = Predictor(Profiler(workload, nodes=3).profile())
    hdfs_gb, local_gb = CostOptimizer.capacity_requirements(
        workload, num_workers=10
    )
    cache = ResultCache()
    optimizer = CostOptimizer(
        predictor, num_workers=10,
        min_hdfs_gb=hdfs_gb, min_local_gb=local_gb,
        cache=cache,
    )

    start = time.perf_counter()
    cold = optimizer.grid_search(vcpu_grid=SEARCH_VCPUS)
    cold_wall = time.perf_counter() - start

    start = time.perf_counter()
    warm = optimizer.grid_search(vcpu_grid=SEARCH_VCPUS)
    warm_wall = time.perf_counter() - start

    assert warm.best.cost_dollars == cold.best.cost_dollars
    return {
        "benchmark": "fig13-15-grid-search",
        "vcpu_grid": list(SEARCH_VCPUS),
        "num_candidates": cold.num_evaluated,
        "best_config": cold.best.config.label(),
        "best_cost_dollars": round(cold.best.cost_dollars, 4),
        "best_runtime_seconds": cold.best.runtime_seconds,
        "cold_wall_seconds": round(cold_wall, 4),
        "warm_wall_seconds": round(warm_wall, 4),
        "cache_speedup": round(cold_wall / warm_wall, 2),
        "cache_stats": cache.stats_summary(),
    }


def bench_resilience() -> dict:
    """Speculation + blacklisting vs a 2.5x straggler on the MD stage.

    Four deterministic measurements of the same single-stage workload:
    clean, clean with speculation armed (the overhead probe), faulted
    without mitigations, and faulted with speculation + blacklisting.
    The simulated makespans are exact-match checked against the
    baseline; the mitigation win and the clean-overhead ceiling are
    asserted fresh on every run.
    """
    stage = make_gatk4_workload().stages[0]
    workload = WorkloadSpec(name="md-stage", stages=(stage,))
    plan = FaultPlan(
        name="bench-straggler",
        faults=(StragglerFault(node=1, slowdown=STRAGGLER_SLOWDOWN),),
    )
    policy = ResiliencePolicy(
        speculation=SpeculationPolicy(),
        blacklist=BlacklistPolicy(max_node_strikes=2),
    )
    speculation_only = ResiliencePolicy(speculation=SpeculationPolicy())

    def measure(faults=None, resilience=None):
        cluster = make_paper_cluster(NUM_SLAVES, HYBRID_CONFIGS[0])
        start = time.perf_counter()
        result = measure_workload(
            cluster, CORES_PER_NODE, workload,
            faults=faults, resilience=resilience,
        )
        return time.perf_counter() - start, result

    wall = 0.0
    elapsed, clean = measure()
    wall += elapsed
    elapsed, clean_armed = measure(resilience=speculation_only)
    wall += elapsed
    elapsed, unmitigated = measure(faults=plan)
    wall += elapsed
    elapsed, mitigated = measure(faults=plan, resilience=policy)
    wall += elapsed

    overhead = (
        clean_armed.total_seconds / clean.total_seconds - 1.0
    )
    summary = merge_summaries(s.resilience for s in mitigated.stages)
    return {
        "benchmark": "resilience-straggler",
        "num_slaves": NUM_SLAVES,
        "cores_per_node": CORES_PER_NODE,
        "straggler_slowdown": STRAGGLER_SLOWDOWN,
        "clean_seconds": clean.total_seconds,
        "clean_speculation_seconds": clean_armed.total_seconds,
        "clean_speculation_overhead_fraction": round(overhead, 6),
        "unmitigated_seconds": unmitigated.total_seconds,
        "mitigated_seconds": mitigated.total_seconds,
        "recovered_fraction": round(
            1.0 - mitigated.total_seconds / unmitigated.total_seconds, 4
        ),
        "speculative_launched": summary.speculative_launched,
        "speculative_wins": summary.speculative_wins,
        "blacklisted": list(summary.blacklisted),
        "wall_seconds": round(wall, 4),
    }


def collect(rounds: int) -> dict:
    result = bench_md_stage(rounds)
    result["core_sweep"] = bench_core_sweep()
    result["optimizer_search"] = bench_optimizer_search()
    result["resilience"] = bench_resilience()
    return result


def check(fresh: dict, baseline: dict) -> list[str]:
    """Compare a fresh run against the committed baseline; return failures."""
    failures: list[str] = []

    def close(a: float, b: float, rel: float = 1e-9) -> bool:
        return abs(a - b) <= rel * max(abs(a), abs(b), 1.0)

    if not close(
        fresh["simulated_makespan_seconds"],
        baseline["simulated_makespan_seconds"],
    ):
        failures.append(
            "MD-stage makespan changed:"
            f" {fresh['simulated_makespan_seconds']!r} vs baseline"
            f" {baseline['simulated_makespan_seconds']!r}"
        )
    if fresh["wall_seconds_best"] > baseline["wall_seconds_best"] * WALL_TOLERANCE:
        failures.append(
            "MD-stage wall time regressed:"
            f" {fresh['wall_seconds_best']}s vs baseline"
            f" {baseline['wall_seconds_best']}s (tolerance {WALL_TOLERANCE}x)"
        )

    for section in ("core_sweep", "optimizer_search"):
        fresh_s, base_s = fresh[section], baseline.get(section)
        if base_s is None:
            continue
        if section == "core_sweep" and not all(
            close(a, b)
            for a, b in zip(
                fresh_s["total_seconds_per_p"], base_s["total_seconds_per_p"]
            )
        ):
            failures.append(
                f"{section}: simulated totals changed:"
                f" {fresh_s['total_seconds_per_p']} vs"
                f" {base_s['total_seconds_per_p']}"
            )
        if section == "optimizer_search" and not close(
            fresh_s["best_runtime_seconds"], base_s["best_runtime_seconds"]
        ):
            failures.append(
                f"{section}: predicted optimum runtime changed:"
                f" {fresh_s['best_runtime_seconds']!r} vs"
                f" {base_s['best_runtime_seconds']!r}"
            )
        if fresh_s["cold_wall_seconds"] > (
            base_s["cold_wall_seconds"] * WALL_TOLERANCE
        ):
            failures.append(
                f"{section}: cold wall time regressed:"
                f" {fresh_s['cold_wall_seconds']}s vs baseline"
                f" {base_s['cold_wall_seconds']}s (tolerance {WALL_TOLERANCE}x)"
            )
        if fresh_s["cache_speedup"] < MIN_CACHE_SPEEDUP:
            failures.append(
                f"{section}: cache speedup {fresh_s['cache_speedup']}x is"
                f" below the required {MIN_CACHE_SPEEDUP}x"
            )

    resil = fresh["resilience"]
    # Fresh guards — these hold on every run, baseline or not.
    if resil["mitigated_seconds"] >= resil["unmitigated_seconds"]:
        failures.append(
            "resilience: mitigation no longer beats the straggler:"
            f" mitigated {resil['mitigated_seconds']}s vs unmitigated"
            f" {resil['unmitigated_seconds']}s"
        )
    if resil[
        "clean_speculation_overhead_fraction"
    ] > MAX_CLEAN_SPECULATION_OVERHEAD:
        failures.append(
            "resilience: armed speculation costs a clean run"
            f" {resil['clean_speculation_overhead_fraction'] * 100:.2f}%,"
            f" above the {MAX_CLEAN_SPECULATION_OVERHEAD * 100:.0f}% ceiling"
        )
    base_r = baseline.get("resilience")
    if base_r is not None:
        for field in (
            "clean_seconds", "clean_speculation_seconds",
            "unmitigated_seconds", "mitigated_seconds",
        ):
            if not close(resil[field], base_r[field]):
                failures.append(
                    f"resilience: {field} changed:"
                    f" {resil[field]!r} vs baseline {base_r[field]!r}"
                )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_simulator.json",
        help="where to write (or read, with --check) the JSON result",
    )
    parser.add_argument("--rounds", type=int, default=ROUNDS)
    parser.add_argument(
        "--check", action="store_true",
        help="compare a fresh run against the recorded JSON instead of"
             " overwriting it; non-zero exit on regression",
    )
    args = parser.parse_args(argv)

    result = collect(args.rounds)
    if args.check:
        baseline = json.loads(args.output.read_text())
        failures = check(result, baseline)
        if failures:
            for failure in failures:
                print(f"FAIL: {failure}")
            return 1
        print(
            "perf check OK:"
            f" md {result['wall_seconds_best']}s"
            f" (baseline {baseline['wall_seconds_best']}s),"
            f" sweep cache {result['core_sweep']['cache_speedup']}x,"
            f" search cache {result['optimizer_search']['cache_speedup']}x"
        )
        return 0

    args.output.write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result, indent=2))
    print(f"[saved to {args.output}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
