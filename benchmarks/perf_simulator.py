"""Performance benchmarks for the simulator and the experiment pipeline.

Three scenarios, written to ``BENCH_simulator.json`` at the repo root so
the performance trajectory is tracked across PRs:

- ``gatk4-md-stage`` — the GATK4 MarkDuplicates stage (973 tasks) on the
  paper's ten-slave cfg1 cluster at 24 cores per node: the heaviest
  single-stage simulation in the validation suite, timing the raw event
  loop.
- ``core_sweep`` — the Fig. 3 core-scaling sweep (2SSD, P = 12/24/36) run
  cold and then warm through a shared pipeline result cache.
- ``optimizer_search`` — the Fig. 13/15 grid search (8/16/32 vCPU, both
  disk kinds) through the array kernel; records the search wall time
  and candidates per second.
- ``resilience`` — the MD stage under a 2.5x straggler, unmitigated vs
  speculation + blacklisting, plus the armed-but-idle overhead on a
  clean run (guarded below 5%).
- ``parallel`` — the PR-5 accelerators: the Fig. 13/15 grid searched
  exhaustively vs bound-pruned (identical best required; the bound must
  discard at least half the grid — the kernel scores the whole grid in
  milliseconds, so the pruning win is model evaluations, not wall
  time), and a cold Fig.-3-shaped grid swept serially vs with two
  worker processes (records bit-identical required; the ≥1.5x
  wall-clock guard applies only on hosts with 2+ usable CPUs — on one
  CPU the walls are still recorded, with the CPU count, for the
  trajectory).  The warm replay through the parallel run's merged cache
  also times the hoisted-fingerprint composition path.
- ``vectorized`` — the PR-6 array kernel (:mod:`repro.model.arrays`) on
  a tiled Fig. 13-15 grid: candidates per second on the pure-Python
  backend, on numpy when installed, and through the scalar per-config
  path, with the batch results equality-checked against the scalar
  model.  Guards: ≥1e5 cand/s pure Python, and with numpy ≥1e6 cand/s
  plus a ≥20x speedup over the scalar path.

Run with::

    PYTHONPATH=src python benchmarks/perf_simulator.py          # refresh
    PYTHONPATH=src python benchmarks/perf_simulator.py --check  # CI guard

``--check`` reruns everything and compares against the committed JSON:
simulated numbers must match exactly (the engine is deterministic), wall
times may not regress beyond a generous tolerance, and the cache speedups
must stay at least 2x.

Not collected by pytest (no ``test_`` prefix); it is a standalone script
so the tier-1 suite stays fast.
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

from repro.analysis.sweep import sweep_cores
from repro.cloud.optimizer import CostOptimizer
from repro.cluster import HYBRID_CONFIGS, make_paper_cluster
from repro.core import Predictor, Profiler
from repro.faults import FaultPlan, StragglerFault
from repro.pipeline import ResultCache
from repro.resilience import (
    BlacklistPolicy,
    ResiliencePolicy,
    SpeculationPolicy,
    merge_summaries,
)
from repro.simulator.engine import SimulationEngine
from repro.workloads import make_gatk4_workload
from repro.workloads.base import WorkloadSpec
from repro.workloads.runner import measure_workload

NUM_SLAVES = 10
CORES_PER_NODE = 24
ROUNDS = 3

#: Fig. 3 setting: the 3-slave motivation cluster, 2SSD placement.
SWEEP_SLAVES = 3
SWEEP_CORES = (12, 24, 36)

#: Fig. 13/15 search grid (the benchmark suite's vcpu grid).
SEARCH_VCPUS = (8, 16, 32)

# Wall time of the same scenario under the O(active)-scan event loop that
# predates the indexed event heap, measured on the reference container when
# the heap landed.  Kept as a fixed baseline so the speedup column stays
# meaningful without checking out old revisions.
SCAN_LOOP_BASELINE_SECONDS = 0.777

#: ``--check`` allows fresh wall times up to this multiple of the recorded
#: ones — generous, because CI machines are noisy; catching order-of-
#: magnitude regressions is the goal.
WALL_TOLERANCE = 4.0

#: Minimum cold/warm speedup the result cache must deliver.
MIN_CACHE_SPEEDUP = 2.0

#: The resilience scenario's straggler severity (matches the shipped
#: example plan family) and the ceiling on what an armed-but-idle
#: speculation policy may cost a clean run.
STRAGGLER_SLOWDOWN = 2.5
MAX_CLEAN_SPECULATION_OVERHEAD = 0.05

#: Largest share of the grid the bound-pruned search may still evaluate
#: — pruning must discard at least half (measured: ~93% discarded).
MAX_PRUNE_EVAL_FRACTION = 0.5

#: Array-kernel throughput floors (candidates scored per second, one
#: core) and the minimum batch-vs-scalar speedup with numpy installed.
MIN_PYTHON_CAND_PER_S = 1e5
MIN_NUMPY_CAND_PER_S = 1e6
MIN_VECTOR_SPEEDUP_VS_SCALAR = 20.0

#: The vectorized benchmark's disk-size axis (the Fig. 13-15 sweep) and
#: how many times the resulting grid is tiled for stable timing.
VECTOR_SIZES_GB = (
    20.0, 50.0, 100.0, 200.0, 500.0, 1000.0, 1500.0, 2000.0, 3000.0, 4000.0
)
VECTOR_TILE_REPS = 50

#: Minimum parallel-vs-serial wall-clock speedup with two workers —
#: enforced only on hosts where two workers can actually run at once.
MIN_PARALLEL_SPEEDUP = 1.5
PARALLEL_WORKERS = 2

#: The parallel grid: Fig.-3-shaped cold sweep, four cells so two
#: workers can balance it.
PARALLEL_GRID_CORES = (8, 12, 24, 36)


def run_once() -> tuple[float, float]:
    """Build and run the MD stage once; returns (wall seconds, makespan)."""
    spec = make_gatk4_workload().stages[0]
    cluster = make_paper_cluster(NUM_SLAVES, HYBRID_CONFIGS[0])
    tasks = spec.build_tasks(cores_per_node=CORES_PER_NODE, jitter_offset=0.0)
    engine = SimulationEngine(cluster, cores_per_node=CORES_PER_NODE)
    start = time.perf_counter()
    makespan = engine.run(tasks)
    return time.perf_counter() - start, makespan


def bench_md_stage(rounds: int) -> dict:
    """The historical event-loop microbenchmark (fields kept stable)."""
    walls = []
    makespan = None
    for _ in range(max(1, rounds)):
        wall, makespan = run_once()
        walls.append(wall)
    best = min(walls)
    return {
        "benchmark": "gatk4-md-stage",
        "num_slaves": NUM_SLAVES,
        "cores_per_node": CORES_PER_NODE,
        "rounds": len(walls),
        "wall_seconds_best": round(best, 4),
        "wall_seconds_all": [round(w, 4) for w in walls],
        "simulated_makespan_seconds": makespan,
        "scan_loop_baseline_seconds": SCAN_LOOP_BASELINE_SECONDS,
        "speedup_vs_scan_loop": round(SCAN_LOOP_BASELINE_SECONDS / best, 2),
        "python": platform.python_version(),
    }


def bench_core_sweep() -> dict:
    """Fig. 3 sweep, cold then warm through one result cache."""
    workload = make_gatk4_workload()
    predictor = Predictor(Profiler(workload, nodes=3).profile())
    cluster = make_paper_cluster(SWEEP_SLAVES, HYBRID_CONFIGS[0])
    cache = ResultCache()

    start = time.perf_counter()
    cold_points = sweep_cores(workload, predictor, cluster, SWEEP_CORES, cache)
    cold_wall = time.perf_counter() - start

    start = time.perf_counter()
    warm_points = sweep_cores(workload, predictor, cluster, SWEEP_CORES, cache)
    warm_wall = time.perf_counter() - start

    assert [p.total.measured for p in warm_points] == [
        p.total.measured for p in cold_points
    ], "cache hits must be bit-identical"
    return {
        "benchmark": "fig3-core-sweep",
        "num_slaves": SWEEP_SLAVES,
        "core_counts": list(SWEEP_CORES),
        "total_seconds_per_p": [p.total.measured for p in cold_points],
        "cold_wall_seconds": round(cold_wall, 4),
        "warm_wall_seconds": round(warm_wall, 4),
        "cache_speedup": round(cold_wall / warm_wall, 2),
        "cache_stats": cache.stats_summary(),
    }


def bench_optimizer_search(rounds: int) -> dict:
    """Fig. 13/15 grid search through the array kernel.

    The search scores the whole grid as one
    :class:`~repro.model.arrays.CandidateBatch`, so there is no
    per-candidate prediction cache to warm any more — the recorded
    numbers are the search wall time (best of ``rounds``) and the
    grid-candidates-per-second rate it implies.
    """
    workload = make_gatk4_workload()
    predictor = Predictor(Profiler(workload, nodes=3).profile())
    hdfs_gb, local_gb = CostOptimizer.capacity_requirements(
        workload, num_workers=10
    )
    optimizer = CostOptimizer(
        predictor, num_workers=10,
        min_hdfs_gb=hdfs_gb, min_local_gb=local_gb,
    )

    walls = []
    result = None
    for _ in range(max(1, rounds)):
        start = time.perf_counter()
        result = optimizer.grid_search(vcpu_grid=SEARCH_VCPUS)
        walls.append(time.perf_counter() - start)
    best_wall = min(walls)

    return {
        "benchmark": "fig13-15-grid-search",
        "vcpu_grid": list(SEARCH_VCPUS),
        "num_candidates": result.num_evaluated,
        "best_config": result.best.config.label(),
        "best_cost_dollars": round(result.best.cost_dollars, 4),
        "best_runtime_seconds": result.best.runtime_seconds,
        "wall_seconds": round(best_wall, 4),
        "candidates_per_second": round(result.num_evaluated / best_wall),
    }


def bench_resilience() -> dict:
    """Speculation + blacklisting vs a 2.5x straggler on the MD stage.

    Four deterministic measurements of the same single-stage workload:
    clean, clean with speculation armed (the overhead probe), faulted
    without mitigations, and faulted with speculation + blacklisting.
    The simulated makespans are exact-match checked against the
    baseline; the mitigation win and the clean-overhead ceiling are
    asserted fresh on every run.
    """
    stage = make_gatk4_workload().stages[0]
    workload = WorkloadSpec(name="md-stage", stages=(stage,))
    plan = FaultPlan(
        name="bench-straggler",
        faults=(StragglerFault(node=1, slowdown=STRAGGLER_SLOWDOWN),),
    )
    policy = ResiliencePolicy(
        speculation=SpeculationPolicy(),
        blacklist=BlacklistPolicy(max_node_strikes=2),
    )
    speculation_only = ResiliencePolicy(speculation=SpeculationPolicy())

    def measure(faults=None, resilience=None):
        cluster = make_paper_cluster(NUM_SLAVES, HYBRID_CONFIGS[0])
        start = time.perf_counter()
        result = measure_workload(
            cluster, CORES_PER_NODE, workload,
            faults=faults, resilience=resilience,
        )
        return time.perf_counter() - start, result

    wall = 0.0
    elapsed, clean = measure()
    wall += elapsed
    elapsed, clean_armed = measure(resilience=speculation_only)
    wall += elapsed
    elapsed, unmitigated = measure(faults=plan)
    wall += elapsed
    elapsed, mitigated = measure(faults=plan, resilience=policy)
    wall += elapsed

    overhead = (
        clean_armed.total_seconds / clean.total_seconds - 1.0
    )
    summary = merge_summaries(s.resilience for s in mitigated.stages)
    return {
        "benchmark": "resilience-straggler",
        "num_slaves": NUM_SLAVES,
        "cores_per_node": CORES_PER_NODE,
        "straggler_slowdown": STRAGGLER_SLOWDOWN,
        "clean_seconds": clean.total_seconds,
        "clean_speculation_seconds": clean_armed.total_seconds,
        "clean_speculation_overhead_fraction": round(overhead, 6),
        "unmitigated_seconds": unmitigated.total_seconds,
        "mitigated_seconds": mitigated.total_seconds,
        "recovered_fraction": round(
            1.0 - mitigated.total_seconds / unmitigated.total_seconds, 4
        ),
        "speculative_launched": summary.speculative_launched,
        "speculative_wins": summary.speculative_wins,
        "blacklisted": list(summary.blacklisted),
        "wall_seconds": round(wall, 4),
    }


def bench_parallel(rounds: int) -> dict:
    """PR-5 accelerators: bound-pruned search and process-parallel grids.

    Correctness (identical best, bit-identical records) is asserted on
    every run; the wall-clock guards live in :func:`check`.
    """
    import json as json_module

    from repro.parallel import available_cpus
    from repro.pipeline.experiment import Experiment
    from repro.pipeline.sources import ResolvedSource

    workload = make_gatk4_workload()
    predictor = Predictor(Profiler(workload, nodes=3).profile())
    hdfs_gb, local_gb = CostOptimizer.capacity_requirements(
        workload, num_workers=10
    )

    def cold_search(**kwargs):
        # A fresh optimizer per round: no cache, so the search is cold.
        optimizer = CostOptimizer(
            predictor, num_workers=10,
            min_hdfs_gb=hdfs_gb, min_local_gb=local_gb,
        )
        start = time.perf_counter()
        result = optimizer.grid_search(vcpu_grid=SEARCH_VCPUS, **kwargs)
        return time.perf_counter() - start, result

    exhaustive_walls, pruned_walls = [], []
    exhaustive = pruned = None
    for _ in range(max(1, rounds)):
        wall, exhaustive = cold_search()
        exhaustive_walls.append(wall)
        wall, pruned = cold_search(prune=True)
        pruned_walls.append(wall)
    assert pruned.best.config == exhaustive.best.config, (
        "pruned search must return the exhaustive optimum"
    )
    assert pruned.best.cost_dollars == exhaustive.best.cost_dollars

    # Cold Fig.-3-shaped sweep, serial vs two worker processes, fresh
    # caches on both sides so every cell really simulates.
    def cold_grid(workers):
        experiment = Experiment(
            ResolvedSource(workload, predictor.report),
            make_paper_cluster(SWEEP_SLAVES, HYBRID_CONFIGS[0]),
        )
        start = time.perf_counter()
        results = experiment.run_grid(
            nodes=(SWEEP_SLAVES,),
            cores_per_node=PARALLEL_GRID_CORES,
            workers=workers,
        )
        wall = time.perf_counter() - start
        dump = json_module.dumps(
            [r.to_dict() for r in results], sort_keys=True
        )
        return wall, dump, experiment

    serial_wall, serial_dump, _ = cold_grid(None)
    parallel_wall, parallel_dump, parallel_experiment = cold_grid(
        PARALLEL_WORKERS
    )
    assert parallel_dump == serial_dump, (
        "parallel grid records must be bit-identical to serial"
    )

    # Warm replay from the merged shards: times the hoisted-fingerprint
    # composition path and proves the parallel run fully warmed its cache.
    start = time.perf_counter()
    replay = parallel_experiment.run_grid(
        nodes=(SWEEP_SLAVES,), cores_per_node=PARALLEL_GRID_CORES
    )
    warm_wall = time.perf_counter() - start
    assert json_module.dumps(
        [r.to_dict() for r in replay], sort_keys=True
    ) == serial_dump

    return {
        "benchmark": "pr5-parallel-and-pruning",
        "search": {
            "vcpu_grid": list(SEARCH_VCPUS),
            "num_candidates": exhaustive.num_evaluated,
            "best_config": pruned.best.config.label(),
            "best_cost_dollars": round(pruned.best.cost_dollars, 4),
            "exhaustive_wall_seconds": round(min(exhaustive_walls), 4),
            "pruned_wall_seconds": round(min(pruned_walls), 4),
            "pruned_evaluated": pruned.num_evaluated,
            "pruned_skipped": pruned.num_pruned,
            "prune_speedup": round(
                min(exhaustive_walls) / min(pruned_walls), 2
            ),
        },
        "grid": {
            "num_slaves": SWEEP_SLAVES,
            "core_counts": list(PARALLEL_GRID_CORES),
            "workers": PARALLEL_WORKERS,
            "usable_cpus": available_cpus(),
            "serial_wall_seconds": round(serial_wall, 4),
            "parallel_wall_seconds": round(parallel_wall, 4),
            "parallel_speedup": round(serial_wall / parallel_wall, 2),
            "warm_wall_seconds": round(warm_wall, 4),
            "records_bit_identical": True,
        },
    }


def bench_vectorized(rounds: int) -> dict:
    """Array-kernel throughput on a tiled Fig. 13-15 grid.

    Scores the optimizer's full (vCPU x disk kind x size x size) grid —
    tiled :data:`VECTOR_TILE_REPS` times so each timing covers tens of
    thousands of candidates — per backend, against the scalar
    per-configuration path on the untiled grid.  Before timing, the
    batch results are equality-checked (``==`` on floats) against the
    scalar model, so the recorded rates always describe a kernel that
    is still exact.
    """
    from repro.model.arrays import (
        CandidateBatch,
        Eq1BatchEvaluator,
        backend_name,
    )

    workload = make_gatk4_workload()
    report = Profiler(workload, nodes=3).profile()
    hdfs_gb, local_gb = CostOptimizer.capacity_requirements(
        workload, num_workers=10
    )
    optimizer = CostOptimizer(
        Predictor(report), num_workers=10,
        min_hdfs_gb=hdfs_gb, min_local_gb=local_gb,
    )
    configs = optimizer._grid_candidates(
        (4, 8, 16, 32), ("pd-standard", "pd-ssd"),
        VECTOR_SIZES_GB, VECTOR_SIZES_GB,
    )
    grid = CandidateBatch.from_configs(configs)
    evaluator = Eq1BatchEvaluator(report)

    # Scalar reference: the per-configuration path the kernel replaced.
    start = time.perf_counter()
    scalar = [optimizer._predict_fresh(config) for config in configs]
    scalar_wall = time.perf_counter() - start
    scalar_rate = len(configs) / scalar_wall

    # Exactness gate on the untiled grid (both available backends).
    backends = ["python"] + (["numpy"] if backend_name() == "numpy" else [])
    for backend in backends:
        scores = evaluator.score(grid, backend=backend)
        assert [float(r) for r in scores.runtime_seconds] == [
            p.t_app for p in scalar
        ], f"{backend} kernel runtimes diverged from the scalar model"
        assert [float(c) for c in scores.cost_dollars] == [
            config.cost_for_runtime(p.t_app)
            for config, p in zip(configs, scalar)
        ], f"{backend} kernel costs diverged from the scalar model"

    tiled = CandidateBatch(
        nodes=grid.nodes * VECTOR_TILE_REPS,
        cores=grid.cores * VECTOR_TILE_REPS,
        hdfs_kinds=grid.hdfs_kinds * VECTOR_TILE_REPS,
        hdfs_sizes_gb=grid.hdfs_sizes_gb * VECTOR_TILE_REPS,
        local_kinds=grid.local_kinds * VECTOR_TILE_REPS,
        local_sizes_gb=grid.local_sizes_gb * VECTOR_TILE_REPS,
        vcpus=grid.vcpus * VECTOR_TILE_REPS,
    )
    rates = {}
    for backend in backends:
        walls = []
        for _ in range(max(1, rounds)):
            start = time.perf_counter()
            evaluator.score(tiled, want_bottlenecks=False, backend=backend)
            walls.append(time.perf_counter() - start)
        rates[backend] = len(tiled) / min(walls)

    fastest = max(rates.values())
    return {
        "benchmark": "pr6-array-kernel",
        "grid_candidates": len(configs),
        "tiled_candidates": len(tiled),
        "default_backend": backend_name(),
        "python_cand_per_s": round(rates["python"]),
        "numpy_cand_per_s": (
            round(rates["numpy"]) if "numpy" in rates else None
        ),
        "scalar_cand_per_s": round(scalar_rate),
        "speedup_vs_scalar": round(fastest / scalar_rate, 1),
        "batch_matches_scalar": True,
    }


def collect(rounds: int) -> dict:
    result = bench_md_stage(rounds)
    result["core_sweep"] = bench_core_sweep()
    result["optimizer_search"] = bench_optimizer_search(rounds)
    result["resilience"] = bench_resilience()
    result["parallel"] = bench_parallel(rounds)
    result["vectorized"] = bench_vectorized(rounds)
    return result


def check(fresh: dict, baseline: dict) -> list[str]:
    """Compare a fresh run against the committed baseline; return failures."""
    failures: list[str] = []

    def close(a: float, b: float, rel: float = 1e-9) -> bool:
        return abs(a - b) <= rel * max(abs(a), abs(b), 1.0)

    if not close(
        fresh["simulated_makespan_seconds"],
        baseline["simulated_makespan_seconds"],
    ):
        failures.append(
            "MD-stage makespan changed:"
            f" {fresh['simulated_makespan_seconds']!r} vs baseline"
            f" {baseline['simulated_makespan_seconds']!r}"
        )
    if fresh["wall_seconds_best"] > baseline["wall_seconds_best"] * WALL_TOLERANCE:
        failures.append(
            "MD-stage wall time regressed:"
            f" {fresh['wall_seconds_best']}s vs baseline"
            f" {baseline['wall_seconds_best']}s (tolerance {WALL_TOLERANCE}x)"
        )

    sweep_f, sweep_b = fresh["core_sweep"], baseline.get("core_sweep")
    if sweep_b is not None:
        if not all(
            close(a, b)
            for a, b in zip(
                sweep_f["total_seconds_per_p"], sweep_b["total_seconds_per_p"]
            )
        ):
            failures.append(
                "core_sweep: simulated totals changed:"
                f" {sweep_f['total_seconds_per_p']} vs"
                f" {sweep_b['total_seconds_per_p']}"
            )
        if sweep_f["cold_wall_seconds"] > (
            sweep_b["cold_wall_seconds"] * WALL_TOLERANCE
        ):
            failures.append(
                "core_sweep: cold wall time regressed:"
                f" {sweep_f['cold_wall_seconds']}s vs baseline"
                f" {sweep_b['cold_wall_seconds']}s (tolerance {WALL_TOLERANCE}x)"
            )
        if sweep_f["cache_speedup"] < MIN_CACHE_SPEEDUP:
            failures.append(
                f"core_sweep: cache speedup {sweep_f['cache_speedup']}x is"
                f" below the required {MIN_CACHE_SPEEDUP}x"
            )

    search_f, search_b = fresh["optimizer_search"], baseline.get(
        "optimizer_search"
    )
    if search_b is not None and "best_runtime_seconds" in search_b:
        if not close(
            search_f["best_runtime_seconds"], search_b["best_runtime_seconds"]
        ):
            failures.append(
                "optimizer_search: predicted optimum runtime changed:"
                f" {search_f['best_runtime_seconds']!r} vs"
                f" {search_b['best_runtime_seconds']!r}"
            )
        if "wall_seconds" in search_b and search_f["wall_seconds"] > (
            search_b["wall_seconds"] * WALL_TOLERANCE
        ):
            failures.append(
                "optimizer_search: wall time regressed:"
                f" {search_f['wall_seconds']}s vs baseline"
                f" {search_b['wall_seconds']}s (tolerance {WALL_TOLERANCE}x)"
            )

    resil = fresh["resilience"]
    # Fresh guards — these hold on every run, baseline or not.
    if resil["mitigated_seconds"] >= resil["unmitigated_seconds"]:
        failures.append(
            "resilience: mitigation no longer beats the straggler:"
            f" mitigated {resil['mitigated_seconds']}s vs unmitigated"
            f" {resil['unmitigated_seconds']}s"
        )
    if resil[
        "clean_speculation_overhead_fraction"
    ] > MAX_CLEAN_SPECULATION_OVERHEAD:
        failures.append(
            "resilience: armed speculation costs a clean run"
            f" {resil['clean_speculation_overhead_fraction'] * 100:.2f}%,"
            f" above the {MAX_CLEAN_SPECULATION_OVERHEAD * 100:.0f}% ceiling"
        )
    base_r = baseline.get("resilience")
    if base_r is not None:
        for field in (
            "clean_seconds", "clean_speculation_seconds",
            "unmitigated_seconds", "mitigated_seconds",
        ):
            if not close(resil[field], base_r[field]):
                failures.append(
                    f"resilience: {field} changed:"
                    f" {resil[field]!r} vs baseline {base_r[field]!r}"
                )

    par = fresh["parallel"]
    search, grid = par["search"], par["grid"]
    # Fresh guards: pruning must keep cutting most of the grid (the
    # array kernel made wall time a wash — the win is skipped model
    # evaluations); parallelism must pay for itself wherever two
    # workers can actually run at once.  (The identical-best and
    # bit-identity guards are asserted inside bench_parallel on every
    # run, --check or not.)
    if search["pruned_evaluated"] > (
        search["num_candidates"] * MAX_PRUNE_EVAL_FRACTION
    ):
        failures.append(
            f"parallel: pruned search evaluated {search['pruned_evaluated']}"
            f" of {search['num_candidates']} candidates — the bound must"
            f" discard at least {1 - MAX_PRUNE_EVAL_FRACTION:.0%} of the grid"
        )
    if search["pruned_skipped"] == 0:
        failures.append("parallel: the pruning bound discarded no candidates")
    if (
        grid["usable_cpus"] >= 2
        and grid["parallel_speedup"] < MIN_PARALLEL_SPEEDUP
    ):
        failures.append(
            f"parallel: {grid['workers']}-worker grid speedup"
            f" {grid['parallel_speedup']}x is below the required"
            f" {MIN_PARALLEL_SPEEDUP}x on {grid['usable_cpus']} CPUs"
        )
    base_p = baseline.get("parallel")
    if base_p is not None:
        if search["best_config"] != base_p["search"]["best_config"]:
            failures.append(
                "parallel: pruned-search optimum changed:"
                f" {search['best_config']!r} vs baseline"
                f" {base_p['search']['best_config']!r}"
            )
        if not close(
            search["best_cost_dollars"],
            base_p["search"]["best_cost_dollars"],
            rel=1e-6,
        ):
            failures.append(
                "parallel: pruned-search optimum cost changed:"
                f" {search['best_cost_dollars']!r} vs baseline"
                f" {base_p['search']['best_cost_dollars']!r}"
            )
        if search["pruned_wall_seconds"] > (
            base_p["search"]["pruned_wall_seconds"] * WALL_TOLERANCE
        ):
            failures.append(
                "parallel: pruned-search wall time regressed:"
                f" {search['pruned_wall_seconds']}s vs baseline"
                f" {base_p['search']['pruned_wall_seconds']}s"
                f" (tolerance {WALL_TOLERANCE}x)"
            )
        if grid["warm_wall_seconds"] > (
            base_p["grid"]["warm_wall_seconds"] * WALL_TOLERANCE
        ):
            failures.append(
                "parallel: warm grid replay regressed:"
                f" {grid['warm_wall_seconds']}s vs baseline"
                f" {base_p['grid']['warm_wall_seconds']}s"
                f" (tolerance {WALL_TOLERANCE}x) — fingerprint hoisting"
                " or the shard merge slowed composition down"
            )

    vec = fresh["vectorized"]
    # Fresh guards: the kernel must stay fast on whatever backend this
    # host has.  (Exactness vs the scalar model is asserted inside
    # bench_vectorized on every run.)
    if vec["python_cand_per_s"] < MIN_PYTHON_CAND_PER_S:
        failures.append(
            f"vectorized: pure-Python kernel at {vec['python_cand_per_s']}"
            f" cand/s is below the required {MIN_PYTHON_CAND_PER_S:.0e}"
        )
    if vec["numpy_cand_per_s"] is not None:
        if vec["numpy_cand_per_s"] < MIN_NUMPY_CAND_PER_S:
            failures.append(
                f"vectorized: numpy kernel at {vec['numpy_cand_per_s']}"
                f" cand/s is below the required {MIN_NUMPY_CAND_PER_S:.0e}"
            )
        if vec["speedup_vs_scalar"] < MIN_VECTOR_SPEEDUP_VS_SCALAR:
            failures.append(
                f"vectorized: {vec['speedup_vs_scalar']}x over the scalar"
                f" path is below the required"
                f" {MIN_VECTOR_SPEEDUP_VS_SCALAR:.0f}x"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_simulator.json",
        help="where to write (or read, with --check) the JSON result",
    )
    parser.add_argument("--rounds", type=int, default=ROUNDS)
    parser.add_argument(
        "--check", action="store_true",
        help="compare a fresh run against the recorded JSON instead of"
             " overwriting it; non-zero exit on regression",
    )
    args = parser.parse_args(argv)

    result = collect(args.rounds)
    if args.check:
        baseline = json.loads(args.output.read_text())
        failures = check(result, baseline)
        if failures:
            for failure in failures:
                print(f"FAIL: {failure}")
            return 1
        vec = result["vectorized"]
        kernel = (
            f"kernel {vec['python_cand_per_s']} cand/s (py)"
            + (
                f" / {vec['numpy_cand_per_s']} (numpy),"
                f" {vec['speedup_vs_scalar']}x vs scalar"
                if vec["numpy_cand_per_s"] is not None else ""
            )
        )
        print(
            "perf check OK:"
            f" md {result['wall_seconds_best']}s"
            f" (baseline {baseline['wall_seconds_best']}s),"
            f" sweep cache {result['core_sweep']['cache_speedup']}x,"
            f" search {result['optimizer_search']['wall_seconds']}s,"
            f" prune kept"
            f" {result['parallel']['search']['pruned_evaluated']}/"
            f"{result['parallel']['search']['num_candidates']},"
            f" {result['parallel']['grid']['workers']}-worker grid"
            f" {result['parallel']['grid']['parallel_speedup']}x"
            f" on {result['parallel']['grid']['usable_cpus']} CPU(s),"
            f" {kernel}"
        )
        return 0

    args.output.write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result, indent=2))
    print(f"[saved to {args.output}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
