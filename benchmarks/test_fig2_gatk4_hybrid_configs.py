"""Fig. 2: GATK4 stage runtimes under the four hybrid disk configurations.

Setting: the four-node motivation cluster (3 slaves), P = 36, 500M read
pairs.  The paper's observations this must reproduce:

1. switching the HDFS device leaves MD unchanged, helps BR a little and
   SF a lot;
2. the dominant stage moves from BR (SSD local) to BR+SF (HDD local);
3. Spark-local is far more I/O-sensitive than HDFS.
"""

from conftest import run_once

from repro.analysis.figures import render_grouped_bars
from repro.analysis.report import render_series
from repro.cluster import HYBRID_CONFIGS
from repro.workloads.runner import measure_workload


def test_fig2_stage_runtimes(benchmark, emit, paper_clusters, gatk4_workload):
    def sweep():
        results = {}
        for config in HYBRID_CONFIGS:
            cluster = paper_clusters[config.config_id]
            measurement = measure_workload(cluster, 36, gatk4_workload)
            results[config.config_id] = {
                stage.name: stage.makespan / 60 for stage in measurement.stages
            }
        return results

    results = run_once(benchmark, sweep)
    labels = [config.label for config in HYBRID_CONFIGS]
    series = {
        stage: [results[config.config_id][stage] for config in HYBRID_CONFIGS]
        for stage in ("MD", "BR", "SF")
    }
    bars = render_grouped_bars(
        "",
        {
            stage: {
                config.shorthand: results[config.config_id][stage]
                for config in HYBRID_CONFIGS
            }
            for stage in ("MD", "BR", "SF")
        },
        unit="min",
    )
    emit("fig2_gatk4_hybrid_configs", render_series(
        "Fig. 2: GATK4 stage runtime (minutes), 3 slaves, P=36",
        "stage", series, labels) + "\n" + bars)

    md = series["MD"]
    br = series["BR"]
    sf = series["SF"]
    # Observation 1: MD insensitive to the HDFS device.  Config pairs that
    # differ only in HDFS: 1 (SSD/SSD) vs 2 (HDD/SSD), and 3 (SSD/HDD) vs
    # 4 (HDD/HDD).
    assert abs(md[1] - md[0]) / md[0] < 0.05
    assert abs(md[3] - md[2]) / md[2] < 0.05
    # Observation 1: SF gains a lot from SSD HDFS when local is SSD.
    assert sf[1] > 1.5 * sf[0]
    # Observation 2: with HDD local, BR and SF are the heavy stages.
    assert br[3] > md[3] and sf[3] > md[3]
    # Observation 3: local downgrade costs far more than HDFS downgrade.
    total = lambda i: md[i] + br[i] + sf[i]
    assert (total(2) - total(0)) > 3 * (total(1) - total(0))
