"""Section V-A's quoted break-point numbers, recomputed from the models.

- HDFS read: T = 33 MB/s -> b = 4.3 (HDD) and 16 (SSD); with MD's
  lambda = 12, B > 36 on both devices (why MD ignores the HDFS device).
- Shuffle read on SSD: T = 60 MB/s, BW = 480 MB/s -> b = 8; with BR's
  lambda = 20, B = 160 (why BR scales through 36 cores).
- Shuffle read on HDD: BW = 15 MB/s -> b < 1; the effective lambda is 5
  and B = 5 (why BR stops scaling past ~5 cores).
- MD's shuffle write on HDD: BW ~ 100 MB/s at ~352 MB chunks -> B ~ 10-15
  (why MD does not scale on HDD).
"""

import pytest
from conftest import run_once

from repro.analysis.report import render_table
from repro.core.breakpoints import BreakPointAnalysis
from repro.storage.device import make_hdd, make_ssd
from repro.units import MB
from repro.workloads.gatk4 import Gatk4Parameters


def test_sec5a_breakpoint_table(benchmark, emit):
    params = Gatk4Parameters()

    def build():
        hdd, ssd = make_hdd(), make_ssd()
        shuffle_rs = params.shuffle_plan.read_request_size
        chunk = params.shuffle_plan.write_request_size
        return {
            "hdfs_read_hdd": BreakPointAnalysis(
                params.hdfs_read_throughput,
                hdd.read_bandwidth(128 * MB), params.md_lambda),
            "hdfs_read_ssd": BreakPointAnalysis(
                params.hdfs_read_throughput,
                ssd.read_bandwidth(128 * MB), params.md_lambda),
            "shuffle_read_ssd": BreakPointAnalysis(
                params.shuffle_read_throughput,
                ssd.read_bandwidth(shuffle_rs), params.br_shuffle_lambda),
            "shuffle_read_hdd": BreakPointAnalysis(
                params.shuffle_read_throughput,
                hdd.read_bandwidth(shuffle_rs), params.br_shuffle_lambda),
            "shuffle_write_hdd": BreakPointAnalysis(
                params.shuffle_write_throughput,
                hdd.write_bandwidth(chunk), 7.0),
        }

    analyses = run_once(benchmark, build)
    rows = [
        [name, f"{a.per_core_throughput / MB:.0f}MB/s",
         f"{a.bandwidth / MB:.0f}MB/s", f"{a.b:.1f}", f"{a.big_b:.1f}"]
        for name, a in analyses.items()
    ]
    emit("sec5a_breakpoints", render_table(
        "Section V-A: break points b = BW/T and turning points B = lambda*b",
        ["operation", "T", "BW", "b", "B"], rows))

    # The exact numbers the paper quotes.
    assert analyses["hdfs_read_hdd"].b == pytest.approx(4.3, abs=0.1)
    assert analyses["hdfs_read_ssd"].b == pytest.approx(16.0, abs=0.2)
    assert analyses["hdfs_read_hdd"].big_b > 36
    assert analyses["hdfs_read_ssd"].big_b > 36
    assert analyses["shuffle_read_ssd"].b == pytest.approx(8.0, abs=0.1)
    assert analyses["shuffle_read_ssd"].big_b == pytest.approx(160.0, abs=2)
    # HDD shuffle read: even one core contends (b < 1)...
    assert analyses["shuffle_read_hdd"].b < 1.0
    # ...with the HDD-relative lambda of 5 the turning point is ~5 cores:
    # lambda_hdd = t_task / t_io_hdd; t_io_hdd = 4x the SSD read time.
    shuffle_rs = Gatk4Parameters().shuffle_plan.read_request_size
    hdd_bw = make_hdd().read_bandwidth(shuffle_rs)
    t_io_ssd = 27 * MB / (60 * MB)
    t_io_hdd = 27 * MB / hdd_bw
    t_task = 20.0 * t_io_ssd
    lambda_hdd = t_task / t_io_hdd
    assert lambda_hdd == pytest.approx(4.8, abs=0.5)  # the paper's "~5"
    big_b_hdd = lambda_hdd * (hdd_bw / hdd_bw)  # b = 1 in the paper's terms
    assert big_b_hdd == pytest.approx(5.0, abs=0.6)
