"""Table IV: I/O data size (GB) in the GATK4 stages."""

import pytest
from conftest import run_once

from repro.analysis.report import render_table
from repro.units import GB
from repro.workloads import make_gatk4_workload

KINDS = ("hdfs_read", "shuffle_write", "shuffle_read", "hdfs_write")

#: The paper's Table IV (logical GB; our hdfs_write carries replication x2).
PAPER_ROWS = {
    "MD": (122, 334, 0, 0),
    "BR": (122, 0, 334, 0),
    "SF": (122, 0, 334, 166),
}


def test_table4_io_sizes(benchmark, emit):
    def build():
        workload = make_gatk4_workload()
        table = {}
        for stage in workload.stages:
            table[stage.name] = tuple(
                stage.total_bytes(kind) / GB for kind in KINDS
            )
        return table

    table = run_once(benchmark, build)
    rows = []
    for stage, values in table.items():
        paper = PAPER_ROWS[stage]
        rows.append([stage] + [f"{v:.0f}" for v in values]
                    + [" / ".join(str(p) for p in paper)])
    emit("table4_gatk4_io_sizes", render_table(
        "Table IV: I/O data size (GB) in different GATK4 stages"
        " (measured | paper; hdfs_write is physical = logical x2 replication)",
        ["stage", *KINDS, "paper (logical)"], rows))

    for stage, paper in PAPER_ROWS.items():
        measured = table[stage]
        assert measured[0] == pytest.approx(paper[0], rel=0.01)  # hdfs read
        assert measured[1] == pytest.approx(paper[1], abs=1)  # shuffle write
        assert measured[2] == pytest.approx(paper[2], abs=1)  # shuffle read
        assert measured[3] == pytest.approx(paper[3] * 2, abs=1)  # replicated
