"""Fig. 4: the groupByKey shuffle, executed for real and measured.

The illustration's mechanism: M mappers each write one output file indexed
by all R reducer ids; each reducer collects its segment from every map
file.  The bench runs a real groupByKey on the functional engine, counts
the M x R segment matrix, and checks the request-size arithmetic of
Section III-C2 against the executed shuffle.
"""

from conftest import run_once

from repro.analysis.report import render_table
from repro.spark.context import DoppioContext
from repro.spark.shuffle import ShufflePlan

M, R = 12, 8


def test_fig4_shuffle_mechanism(benchmark, emit):
    def run():
        sc = DoppioContext()
        pairs = [(key % 50, f"value-{key}") for key in range(4000)]
        grouped = sc.parallelize(pairs, M).group_by_key(R)
        result = dict(grouped.collect())
        segments = sc.runtime.shuffle_segment_count(grouped)
        profile = next(
            p for p in sc.stage_profiles if p.shuffle_write_bytes > 0
        )
        return result, segments, profile

    result, segments, profile = run_once(benchmark, run)
    plan = ShufflePlan(
        total_bytes=profile.shuffle_write_bytes,
        num_mappers=profile.num_mappers,
        num_reducers=profile.num_reducers,
    )
    rows = [
        ["mappers M", profile.num_mappers],
        ["reducers R", profile.num_reducers],
        ["non-empty segments", segments],
        ["segment matrix M x R", plan.total_segments],
        ["bytes through shuffle", f"{profile.shuffle_write_bytes:.0f}"],
        ["avg segment size", f"{plan.read_request_size:.0f}B"],
        ["distinct keys grouped", len(result)],
    ]
    emit("fig4_groupbykey", render_table(
        "Fig. 4: groupByKey executed on the functional engine",
        ["quantity", "value"], rows))

    assert profile.num_mappers == M
    assert profile.num_reducers == R
    # Every key's values really grouped.
    assert len(result) == 50
    assert all(len(values) == 80 for values in result.values())
    # Each reducer touches (up to) every map file: segments ~ M x R.
    assert segments <= M * R
    assert segments > M * R * 0.5
    # The Fig. 4 request-size rule: avg segment = (D/R)/M, so the segment
    # matrix exactly tiles the shuffled bytes.
    import pytest

    assert plan.read_request_size * M * R == pytest.approx(
        profile.shuffle_write_bytes
    )
