"""Extension: prediction-driven job scheduling (the paper's intro use case).

"Our performance prediction model can allow the scheduler to know ahead
the approximating job execution time and thus enable better job scheduling
with less job waiting time."  A batch of heterogeneous jobs (GATK4, SVM,
TriangleCount, LR) is queued on a shared ten-slave cluster; FIFO is
compared against shortest-predicted-job-first using Doppio estimates, with
the oracle (true shortest-job-first) as the bound.
"""

from conftest import run_once

from repro.analysis.report import render_table
from repro.cluster import HYBRID_CONFIGS, make_paper_cluster
from repro.core import Predictor, Profiler
from repro.schedule import Job, fifo_order, simulate_queue, spjf_order
from repro.schedule.scheduler import oracle_order
from repro.workloads import (
    make_gatk4_workload,
    make_logistic_regression_workload,
    make_svm_workload,
    make_triangle_count_workload,
)
from repro.workloads.runner import measure_workload


def test_ext_scheduler_waiting_times(benchmark, emit):
    def build_and_schedule():
        cluster = make_paper_cluster(10, HYBRID_CONFIGS[0])
        cores = 36
        jobs = []
        # Submission order is deliberately worst-case: longest first.
        for name, workload in (
            ("gatk4", make_gatk4_workload()),
            ("triangle-count", make_triangle_count_workload()),
            ("lr-small", make_logistic_regression_workload(num_slaves=10)),
            ("svm", make_svm_workload()),
        ):
            predictor = Predictor(Profiler(workload, nodes=3).profile())
            predicted = predictor.predict_runtime(cluster, cores)
            true = measure_workload(cluster, cores, workload).total_seconds
            jobs.append(
                Job(name=name, true_runtime=true, predicted_runtime=predicted)
            )
        return {
            "FIFO": simulate_queue(jobs, fifo_order, "FIFO"),
            "SPJF (Doppio)": simulate_queue(jobs, spjf_order, "SPJF"),
            "oracle SJF": simulate_queue(jobs, oracle_order, "oracle"),
        }, jobs

    results, jobs = run_once(benchmark, build_and_schedule)
    rows = [
        [name, f"{result.mean_waiting_time / 60:.1f}",
         f"{result.mean_turnaround_time / 60:.1f}",
         f"{result.makespan / 60:.1f}"]
        for name, result in results.items()
    ]
    job_rows = "\n".join(
        f"  {job.name}: true {job.true_runtime / 60:.1f} min,"
        f" predicted {job.predicted_runtime / 60:.1f} min"
        for job in jobs
    )
    emit("ext_scheduler", render_table(
        "Extension: shared-cluster queue, mean waiting time (min)",
        ["policy", "mean wait", "mean turnaround", "makespan"], rows)
        + "\njobs:\n" + job_rows)

    fifo = results["FIFO"]
    spjf = results["SPJF (Doppio)"]
    oracle = results["oracle SJF"]
    # Doppio-ordered scheduling cuts waiting time substantially...
    assert spjf.mean_waiting_time < 0.7 * fifo.mean_waiting_time
    # ...and its ~5% prediction errors are good enough to match the oracle
    # ordering on a job mix this heterogeneous.
    assert spjf.mean_waiting_time <= oracle.mean_waiting_time * 1.01
    # Total work is conserved regardless of policy.
    assert spjf.makespan / fifo.makespan < 1.001
