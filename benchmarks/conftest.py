"""Shared fixtures and reporting helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures.  Besides
the pytest-benchmark timing, each bench renders its table/series as text:
printed to stdout and saved under ``benchmarks/results/`` so the artifacts
survive output capturing.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.cluster import HYBRID_CONFIGS, make_paper_cluster
from repro.core import Predictor, Profiler
from repro.pipeline import ResolvedSource, ResultCache
from repro.workloads import make_gatk4_workload

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def report_dir():
    """Directory collecting the rendered tables/figures."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def emit(report_dir):
    """Callable saving (and echoing) one experiment's rendered output."""

    def _emit(name: str, text: str) -> None:
        path = report_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return _emit


@pytest.fixture(scope="session")
def gatk4_workload():
    return make_gatk4_workload()


@pytest.fixture(scope="session")
def gatk4_report(gatk4_workload):
    return Profiler(gatk4_workload, nodes=3).profile()


@pytest.fixture(scope="session")
def gatk4_predictor(gatk4_report):
    return Predictor(gatk4_report)


@pytest.fixture(scope="session")
def gatk4_source(gatk4_workload, gatk4_report):
    """GATK4 as a pre-resolved pipeline source (no re-profiling)."""
    return ResolvedSource(gatk4_workload, gatk4_report)


@pytest.fixture(scope="session")
def pipeline_cache():
    """One result cache shared by every pipeline-driven benchmark."""
    return ResultCache()


@pytest.fixture(scope="session")
def paper_clusters():
    """The four Table III configurations on the 3-slave motivation cluster."""
    return {
        config.config_id: make_paper_cluster(3, config)
        for config in HYBRID_CONFIGS
    }


def run_once(benchmark, func):
    """Run a heavy experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, rounds=1, iterations=1)
