"""Shared fixtures and reporting helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures.  Besides
the pytest-benchmark timing, each bench renders its table/series as text:
printed to stdout and saved under ``benchmarks/results/`` so the artifacts
survive output capturing.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.cloud import CostOptimizer
from repro.cluster import HYBRID_CONFIGS, make_paper_cluster
from repro.core import Predictor, Profiler
from repro.pipeline import ResolvedSource, ResultCache
from repro.workloads import make_gatk4_workload
from repro.workloads.runner import measure_workload

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def report_dir():
    """Directory collecting the rendered tables/figures."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def emit(report_dir):
    """Callable saving (and echoing) one experiment's rendered output."""

    def _emit(name: str, text: str) -> None:
        path = report_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return _emit


@pytest.fixture(scope="session")
def gatk4_workload():
    return make_gatk4_workload()


@pytest.fixture(scope="session")
def gatk4_report(gatk4_workload):
    return Profiler(gatk4_workload, nodes=3).profile()


@pytest.fixture(scope="session")
def gatk4_predictor(gatk4_report):
    return Predictor(gatk4_report)


@pytest.fixture(scope="session")
def gatk4_source(gatk4_workload, gatk4_report):
    """GATK4 as a pre-resolved pipeline source (no re-profiling)."""
    return ResolvedSource(gatk4_workload, gatk4_report)


@pytest.fixture(scope="session")
def pipeline_cache():
    """One result cache shared by every pipeline-driven benchmark."""
    return ResultCache()


@pytest.fixture(scope="session")
def paper_clusters():
    """The four Table III configurations on the 3-slave motivation cluster."""
    return {
        config.config_id: make_paper_cluster(3, config)
        for config in HYBRID_CONFIGS
    }


@pytest.fixture(scope="session")
def gatk4_optimizer(gatk4_predictor, gatk4_workload, pipeline_cache):
    """The Fig. 13/15 cost optimizer: paper capacities, shared cache."""
    hdfs_gb, local_gb = CostOptimizer.capacity_requirements(
        gatk4_workload, num_workers=10
    )
    return CostOptimizer(
        gatk4_predictor, num_workers=10,
        min_hdfs_gb=hdfs_gb, min_local_gb=local_gb,
        cache=pipeline_cache,
    )


@pytest.fixture(scope="session")
def measure_on_config():
    """Callable measuring a workload on a paper cluster built per config."""

    def _measure(config, workload, cores=36, slaves=10):
        return measure_workload(
            make_paper_cluster(slaves, config), cores, workload
        )

    return _measure


@pytest.fixture(scope="session")
def hdd_ssd_phase_times(measure_on_config):
    """Callable timing a workload on 2SSD vs 2HDD (the Fig. 8-11 gaps).

    Returns ``{"2SSD": seconds, "2HDD": seconds}`` for a single stage
    (``stage=``), a phase group's stage sum (``phase_group=``), or the
    whole application (neither).
    """

    def _times(workload, stage=None, phase_group=None):
        names = (
            workload.parameters["phase_groups"][phase_group]
            if phase_group is not None else None
        )
        times = {}
        for config in (HYBRID_CONFIGS[0], HYBRID_CONFIGS[3]):
            run = measure_on_config(config, workload)
            if names is not None:
                times[config.shorthand] = sum(
                    run.stage(name).makespan for name in names
                )
            elif stage is not None:
                times[config.shorthand] = run.stage(stage).makespan
            else:
                times[config.shorthand] = run.total_seconds
        return times

    return _times


def run_once(benchmark, func):
    """Run a heavy experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, rounds=1, iterations=1)
