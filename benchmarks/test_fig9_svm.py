"""Fig. 9: Support Vector Machine exp vs model (paper avg error 8.4%).

Phases: dataValidator (HDFS read), 10 in-memory iterations, and the
170 GB subtract shuffle, where the paper reports a 6.2x HDD/SSD gap.
"""

from app_validation import (
    assert_within_paper_bound,
    render_validation,
    validate_application,
)
from conftest import run_once

from repro.workloads import make_svm_workload


def test_fig9_svm_accuracy(benchmark, emit, pipeline_cache):
    workload = make_svm_workload()
    points = run_once(benchmark, lambda: validate_application(workload, pipeline_cache))
    emit("fig9_svm", render_validation("Fig. 9", "SVM", 8.4, points))
    assert_within_paper_bound(points)


def test_fig9_subtract_gap(benchmark, emit, hdd_ssd_phase_times):
    """The subtract phase's HDD/SSD gap (paper: 6.2x)."""
    workload = make_svm_workload()

    times = run_once(
        benchmark,
        lambda: hdd_ssd_phase_times(workload, phase_group="subtract"),
    )
    gap = times["2HDD"] / times["2SSD"]
    emit("fig9_svm_subtract_gap", (
        f"SVM subtract phase: SSD {times['2SSD'] / 60:.1f} min,"
        f" HDD {times['2HDD'] / 60:.1f} min -> {gap:.1f}x (paper: 6.2x)"
    ))
    assert 4.0 < gap < 9.0


def test_fig9_iterations_device_independent(benchmark, emit,
                                            hdd_ssd_phase_times):
    workload = make_svm_workload()

    times = run_once(
        benchmark, lambda: hdd_ssd_phase_times(workload, stage="iteration")
    )
    emit("fig9_svm_iteration_phase", (
        f"SVM iteration phase (cached in memory): SSD"
        f" {times['2SSD']:.0f}s, HDD {times['2HDD']:.0f}s"
    ))
    assert abs(times["2HDD"] - times["2SSD"]) / times["2SSD"] < 0.01
