"""Section III-C: the shuffle-read analysis, numbers reproduced exactly.

- M = 973 mappers (122 GB / 128 MB blocks), 27 MB per reducer;
- each shuffle read request is 27 MB / 973 ~ 30 KB (iostat: ~60 sectors);
- the shuffle-read floor on HDD: 334 GB / 3 nodes / 15 MB/s = 126 min,
  which matches the simulated BR and SF runtimes on the 2HDD cluster.
"""

import pytest
from conftest import run_once

from repro.analysis.report import render_table
from repro.cluster import HYBRID_CONFIGS, make_paper_cluster
from repro.units import KB, MB
from repro.workloads.gatk4 import Gatk4Parameters
from repro.workloads.runner import measure_workload


def test_sec3c_shuffle_geometry(benchmark, emit):
    def build():
        return Gatk4Parameters().shuffle_plan

    plan = run_once(benchmark, build)
    rows = [
        ["mappers M", plan.num_mappers, "973"],
        ["reducers R", plan.num_reducers, "334GB / 27MB"],
        ["read request", f"{plan.read_request_size / KB:.1f}KB", "~30KB"],
        ["iostat avgrq-sz", f"{plan.avgrq_sz_sectors():.0f} sectors", "~60"],
        ["write chunk", f"{plan.write_request_size / MB:.0f}MB", "~365MB"],
        ["segments MxR", plan.total_segments, ""],
    ]
    emit("sec3c_shuffle_geometry", render_table(
        "Section III-C: GATK4 shuffle geometry", ["quantity", "value", "paper"],
        rows))
    assert plan.num_mappers == 973
    assert 25 * KB < plan.read_request_size < 32 * KB
    assert 54 <= plan.avgrq_sz_sectors() <= 62


def test_sec3c_126_minute_analysis(benchmark, emit, gatk4_workload):
    def measure():
        cluster = make_paper_cluster(3, HYBRID_CONFIGS[3])  # 2HDD
        return measure_workload(cluster, 36, gatk4_workload)

    measurement = run_once(benchmark, measure)
    analytical_minutes = 334 * 1024 / 3 / 15 / 60
    br_minutes = measurement.stage("BR").makespan / 60
    sf_minutes = measurement.stage("SF").makespan / 60
    emit("sec3c_126min_analysis", (
        "Section III-C3: shuffle-read floor = 334GB / 3 nodes / 15MB/s ="
        f" {analytical_minutes:.0f} min (paper: 126 min).\n"
        f"Simulated BR on 2HDD: {br_minutes:.0f} min;"
        f" SF: {sf_minutes:.0f} min — both pinned at the floor."
    ))
    assert analytical_minutes == pytest.approx(127, abs=1)
    assert br_minutes == pytest.approx(analytical_minutes, rel=0.12)
    assert sf_minutes == pytest.approx(analytical_minutes, rel=0.12)
