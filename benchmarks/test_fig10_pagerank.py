"""Fig. 10: PageRank exp vs model (paper avg error 5.2%).

The 420 GB working set exceeds the ten-slave cluster's 360 GB of storage
memory and persists on Spark-local; each of the 10 iterations re-reads and
re-writes it (the paper reports a 2.2x HDD/SSD iteration gap).
"""

from app_validation import (
    assert_within_paper_bound,
    render_validation,
    validate_application,
)
from conftest import run_once

from repro.spark.conf import SparkConf
from repro.spark.memory import fits_in_storage_memory
from repro.units import GB
from repro.workloads import make_pagerank_workload


def test_fig10_pagerank_accuracy(benchmark, emit, pipeline_cache):
    workload = make_pagerank_workload()
    points = run_once(benchmark, lambda: validate_application(workload, pipeline_cache))
    emit("fig10_pagerank", render_validation("Fig. 10", "PageRank", 5.2, points))
    assert_within_paper_bound(points)


def test_fig10_graph_does_not_fit_memory(benchmark, emit):
    def check():
        return fits_in_storage_memory(420 * GB, num_slaves=10, conf=SparkConf())

    fits = run_once(benchmark, check)
    emit("fig10_pagerank_memory", (
        "PageRank 420GB working set vs 10x36GB storage memory:"
        f" fits={fits} -> persisted on Spark-local"
    ))
    assert not fits


def test_fig10_iteration_gap(benchmark, emit, hdd_ssd_phase_times):
    """The iteration phase's HDD/SSD gap (paper: 2.2x)."""
    workload = make_pagerank_workload()

    times = run_once(
        benchmark, lambda: hdd_ssd_phase_times(workload, stage="iteration")
    )
    gap = times["2HDD"] / times["2SSD"]
    emit("fig10_pagerank_iteration_gap", (
        f"PageRank iteration phase: SSD {times['2SSD'] / 60:.1f} min,"
        f" HDD {times['2HDD'] / 60:.1f} min -> {gap:.1f}x (paper: 2.2x)"
    ))
    assert 1.7 < gap < 3.0
