"""The paper's measurement protocol: average of five runs with error bars.

Section V: "We report the average run time for five runs in the experiment
results and also report error bars with positive and negative error
values."  The simulator reproduces this via rotated task-skew
realizations; this bench reports mean / min / max per GATK4 stage and
checks the spread is small relative to the measurement (tight error bars,
as in the paper's figures) while the *model* prediction stays within the
bars' neighbourhood.
"""

from conftest import run_once

from repro.analysis.report import render_table
from repro.cluster import HYBRID_CONFIGS, make_paper_cluster
from repro.workloads.runner import measure_workload_repeated

RUNS = 5


def test_error_bars_five_runs(benchmark, emit, gatk4_workload, gatk4_predictor):
    def measure():
        cluster = make_paper_cluster(10, HYBRID_CONFIGS[0])
        runs = measure_workload_repeated(cluster, 24, gatk4_workload, runs=RUNS)
        prediction = gatk4_predictor.predict(cluster, 24)
        return runs, prediction

    runs, prediction = run_once(benchmark, measure)
    rows = []
    for stage in gatk4_workload.stages:
        samples = [run.stage(stage.name).makespan for run in runs]
        mean = sum(samples) / len(samples)
        rows.append(
            [stage.name, f"{mean / 60:.2f}",
             f"-{(mean - min(samples)) / 60:.2f}/+{(max(samples) - mean) / 60:.2f}",
             f"{prediction.stage(stage.name).t_stage / 60:.2f}"]
        )
        # Error bars are tight: the five runs agree within a few percent.
        assert (max(samples) - min(samples)) / mean < 0.08
        # The model lands within 10% of the five-run mean.
        assert abs(prediction.stage(stage.name).t_stage - mean) / mean < 0.10
    emit("error_bars_five_runs", render_table(
        f"Five-run protocol: GATK4 on 2SSD, N=10, P=24 (minutes, {RUNS} runs)",
        ["stage", "mean", "error bars", "model"], rows))
