"""Fig. 15: cost and runtime with SSD as Spark-local (HDFS = 1 TB HDD).

The paper's conclusion: 200 GB pd-ssd local + 1 TB HDD HDFS is the
cost-optimal configuration — $3.75, i.e. 38% and 57% below R1 and R2 —
and beats the best HDD-local configuration (~1.1x cheaper).
"""

from conftest import run_once

from repro.analysis.report import render_series, render_table
from repro.cloud import (
    r1_spark_recommendation,
    r2_cloudera_recommendation,
)

SSD_SIZES = (20, 50, 100, 200, 500, 1000, 2000, 3200)


def test_fig15_cost_and_runtime_vs_ssd_size(benchmark, emit, gatk4_optimizer):
    optimizer = gatk4_optimizer

    def sweep():
        rows = []
        for ssd_gb in SSD_SIZES:
            if ssd_gb < optimizer.min_local_gb:
                rows.append((ssd_gb, None, None))
                continue
            evaluated = optimizer.evaluate(
                optimizer.make_config(16, "pd-standard", 1000, "pd-ssd", ssd_gb)
            )
            rows.append(
                (ssd_gb, evaluated.cost_dollars, evaluated.runtime_seconds / 60)
            )
        return rows

    rows = run_once(benchmark, sweep)
    feasible = [(size, cost, runtime) for size, cost, runtime in rows
                if cost is not None]
    emit("fig15_ssd_cost", render_series(
        "Fig. 15: cost ($) and runtime (min) vs SSD Spark-local size"
        " (HDFS = 1TB HDD, 16 vCPU x10)",
        "SSD GB",
        {"cost $": [cost for _, cost, _ in feasible],
         "runtime min": [runtime for _, _, runtime in feasible]},
        [size for size, _, _ in feasible],
        value_format="{:.2f}"))
    # Beyond a modest size, more SSD only adds cost: the curve's minimum is
    # at a small-to-mid size, not the largest.
    costs = [cost for _, cost, _ in feasible]
    assert costs.index(min(costs)) < len(costs) - 2


def test_fig15_headline_savings(benchmark, emit, gatk4_optimizer):
    optimizer = gatk4_optimizer

    def search():
        full = optimizer.grid_search(vcpu_grid=(8, 16, 32))
        hdd_only = optimizer.grid_search(
            vcpu_grid=(8, 16, 32), disk_kinds=("pd-standard",)
        )
        r1 = optimizer.evaluate(r1_spark_recommendation())
        r2 = optimizer.evaluate(r2_cloudera_recommendation())
        return full, hdd_only, r1, r2

    full, hdd_only, r1, r2 = run_once(benchmark, search)
    rows = [
        ["overall optimum", full.best.config.label(),
         f"${full.best.cost_dollars:.2f}", "$3.75 (paper)"],
        ["HDD-only optimum", hdd_only.best.config.label(),
         f"${hdd_only.best.cost_dollars:.2f}", "$4.12 (paper)"],
        ["R1", r1.config.label(), f"${r1.cost_dollars:.2f}", "$6.06 (paper)"],
        ["R2", r2.config.label(), f"${r2.cost_dollars:.2f}", "$8.65 (paper)"],
        ["savings vs R1", "", f"{full.savings_versus(r1) * 100:.0f}%",
         "38% (paper)"],
        ["savings vs R2", "", f"{full.savings_versus(r2) * 100:.0f}%",
         "57% (paper)"],
    ]
    emit("fig15_headline", render_table(
        "Fig. 15 headline: SSD-local optimum vs alternatives",
        ["configuration", "details", "cost", "paper"], rows))

    # SSD local wins, and by roughly the paper's margin (~1.1x).
    assert full.best.config.local_disk_kind == "pd-ssd"
    assert full.best.cost_dollars < hdd_only.best.cost_dollars
    assert hdd_only.best.cost_dollars / full.best.cost_dollars < 1.5
    assert full.savings_versus(r1) > 0.25
    assert full.savings_versus(r2) > 0.45
