"""Shared machinery for the Fig. 8-12 application-validation benchmarks.

Each figure compares measured ("exp") and model-predicted runtimes for one
application across disk configurations and executor core counts, exactly
as Section V-B does, and reports the average error next to the paper's
quoted number.
"""

from __future__ import annotations

from repro.analysis.errors import ExpVsModel, average_error, error_summary
from repro.analysis.report import render_table
from repro.cluster import HYBRID_CONFIGS
from repro.pipeline import ClusterPlatform, Experiment, ResultCache, SpecSource
from repro.workloads.base import WorkloadSpec

CORE_SWEEP = (12, 36)
NODES = 10


def validate_application(
    workload: WorkloadSpec, cache: ResultCache | None = None
) -> list[ExpVsModel]:
    """Profile, measure, and predict one application; return the points.

    One experiment-pipeline pass per disk configuration: the source is
    profiled once, each ``(config, P)`` point yields an exp-vs-model run
    record, and a shared ``cache`` deduplicates repeated points across
    figures.

    Phases listed in the workload's ``phase_groups`` parameter are merged
    (e.g. SVM's subtract_write + subtract_read into one "subtract" bar), as
    in the paper's figures.
    """
    source = SpecSource(workload)
    groups = workload.parameters.get(
        "phase_groups",
        {stage.name: [stage.name] for stage in workload.stages},
    )
    points = []
    for config in (HYBRID_CONFIGS[0], HYBRID_CONFIGS[3]):
        experiment = Experiment(
            source, ClusterPlatform.from_config(config), cache=cache
        )
        for cores in CORE_SWEEP:
            result = experiment.run(NODES, cores)
            for phase, stage_names in groups.items():
                points.append(
                    ExpVsModel(
                        label=f"{config.shorthand} {phase} P={cores}",
                        measured=sum(
                            result.stage(name).measured_seconds
                            for name in stage_names
                        ),
                        predicted=sum(
                            result.stage(name).predicted_seconds
                            for name in stage_names
                        ),
                    )
                )
    return points


def render_validation(
    figure: str, app_name: str, paper_error_percent: float,
    points: list[ExpVsModel],
) -> str:
    """Fig. 8-12-style table: exp, model, error per phase/config/P."""
    rows = [
        [p.label, f"{p.measured / 60:.1f}", f"{p.predicted / 60:.1f}",
         f"{p.error * 100:.1f}%"]
        for p in points
    ]
    title = (
        f"{figure}: {app_name} exp vs model (minutes), N={NODES} — "
        f"{error_summary(points)} (paper avg: {paper_error_percent:.1f}%)"
    )
    return render_table(title, ["point", "exp", "model", "error"], rows)


def assert_within_paper_bound(points: list[ExpVsModel]) -> None:
    """The paper's headline claim: error rate within 10 %."""
    assert average_error(points) < 0.10
