"""Fig. 3: GATK4 runtime for 2HDD and 2SSD at P = 12, 24, 36.

The paper's findings: BR and SF scale with P on 2SSD but stay flat on
2HDD; MD stays roughly flat in both (write-floor-bound on HDD).
"""

from conftest import run_once

from repro.analysis.report import render_series
from repro.cluster import HYBRID_CONFIGS
from repro.pipeline import Experiment

CORE_COUNTS = (12, 24, 36)


def test_fig3_core_scaling(
    benchmark, emit, paper_clusters, gatk4_source, pipeline_cache
):
    def sweep():
        results = {}
        for config in (HYBRID_CONFIGS[0], HYBRID_CONFIGS[3]):
            experiment = Experiment(
                gatk4_source,
                paper_clusters[config.config_id],
                cache=pipeline_cache,
            )
            for cores in CORE_COUNTS:
                measurement = experiment.measure(cores_per_node=cores)
                for stage in measurement.stages:
                    key = (config.shorthand, stage.name)
                    results.setdefault(key, []).append(stage.makespan / 60)
        return results

    results = run_once(benchmark, sweep)
    series = {
        f"{config}/{stage}": results[(config, stage)]
        for config in ("2SSD", "2HDD")
        for stage in ("MD", "BR", "SF")
    }
    emit("fig3_gatk4_core_scaling", render_series(
        "Fig. 3: GATK4 stage runtime (minutes) vs executor cores P",
        "P", series, CORE_COUNTS))

    # BR and SF scale on SSD...
    assert results[("2SSD", "BR")][-1] < 0.45 * results[("2SSD", "BR")][0]
    assert results[("2SSD", "SF")][-1] < 0.55 * results[("2SSD", "SF")][0]
    # ...but are flat on HDD (shuffle-read floor).
    for stage in ("BR", "SF"):
        values = results[("2HDD", stage)]
        assert max(values) / min(values) < 1.12
    # MD on HDD is pinned near its shuffle-write floor at higher P.
    md_hdd = results[("2HDD", "MD")]
    assert md_hdd[1] / md_hdd[2] < 1.25
