"""Fig. 8: Logistic Regression exp vs model (paper avg error 5.3%).

Two datasets: (a) 1200M examples — ``parsedData`` fits in cluster memory,
so iterations are device-independent and the HDD/SSD gap (up to 2x on the
dataValidator phase) comes from HDFS; (b) 4000M examples — ``parsedData``
is persisted on Spark-local, and each of the 50 iterations re-reads it
(the paper reports a 7.0x iteration gap).
"""

from app_validation import (
    assert_within_paper_bound,
    render_validation,
    validate_application,
)
from conftest import run_once

from repro.workloads import make_logistic_regression_workload
from repro.workloads.logistic_regression import LARGE_DATASET


def test_fig8a_small_dataset(benchmark, emit, pipeline_cache):
    workload = make_logistic_regression_workload(num_slaves=10)
    points = run_once(benchmark, lambda: validate_application(workload, pipeline_cache))
    emit("fig8a_lr_small", render_validation(
        "Fig. 8a", "LogisticRegression (1200M, cached)", 5.3, points))
    assert_within_paper_bound(points)
    assert workload.parameters["cached"] is True


def test_fig8b_large_dataset(benchmark, emit, pipeline_cache):
    workload = make_logistic_regression_workload(LARGE_DATASET, num_slaves=10)
    points = run_once(benchmark, lambda: validate_application(workload, pipeline_cache))
    emit("fig8b_lr_large", render_validation(
        "Fig. 8b", "LogisticRegression (4000M, persisted)", 5.3, points))
    assert_within_paper_bound(points)
    assert workload.parameters["cached"] is False


def test_fig8_iteration_gap_7x(benchmark, emit, hdd_ssd_phase_times):
    """The summary's 7.0x HDD/SSD iteration-phase ratio (large dataset)."""
    workload = make_logistic_regression_workload(LARGE_DATASET, num_slaves=10)

    times = run_once(
        benchmark, lambda: hdd_ssd_phase_times(workload, stage="iteration")
    )
    ssd, hdd = times["2SSD"], times["2HDD"]
    gap = hdd / ssd
    emit("fig8_lr_iteration_gap", (
        f"LR large-dataset iteration phase: SSD {ssd / 60:.1f} min,"
        f" HDD {hdd / 60:.1f} min -> {gap:.1f}x (paper: 7.0x)"
    ))
    assert 5.5 < gap < 8.5
