"""Fig. 5: fio IOPS (a) and effective bandwidth (b) vs read block size."""

from conftest import run_once

from repro.analysis.report import render_series
from repro.storage.device import make_hdd, make_ssd
from repro.storage.fio import run_fio_sweep
from repro.units import KB, MB, fmt_bytes


def test_fig5_iops_and_bandwidth(benchmark, emit):
    def sweep():
        hdd, ssd = make_hdd(), make_ssd()
        return run_fio_sweep(hdd), run_fio_sweep(ssd)

    hdd_sweep, ssd_sweep = run_once(benchmark, sweep)
    sizes = [result.block_size for result in hdd_sweep]
    labels = [fmt_bytes(size) for size in sizes]
    bandwidth_series = {
        "HDD MB/s": [r.bandwidth / MB for r in hdd_sweep],
        "SSD MB/s": [r.bandwidth / MB for r in ssd_sweep],
        "SSD/HDD": [
            s.bandwidth / h.bandwidth for s, h in zip(ssd_sweep, hdd_sweep)
        ],
    }
    iops_series = {
        "HDD IOPS": [r.iops for r in hdd_sweep],
        "SSD IOPS": [r.iops for r in ssd_sweep],
    }
    emit("fig5a_fio_iops", render_series(
        "Fig. 5a: IOPS vs read block size", "block", iops_series, labels,
        value_format="{:.0f}"))
    emit("fig5b_fio_bandwidth", render_series(
        "Fig. 5b: effective bandwidth vs read block size", "block",
        bandwidth_series, labels))

    by_size_hdd = {r.block_size: r for r in hdd_sweep}
    by_size_ssd = {r.block_size: r for r in ssd_sweep}
    # The paper's anchor points.
    assert abs(by_size_hdd[30 * KB].bandwidth / MB - 15) < 0.5
    assert abs(by_size_ssd[30 * KB].bandwidth / MB - 480) < 5
    gap_4k = by_size_ssd[4 * KB].bandwidth / by_size_hdd[4 * KB].bandwidth
    gap_30k = by_size_ssd[30 * KB].bandwidth / by_size_hdd[30 * KB].bandwidth
    gap_128m = by_size_ssd[128 * MB].bandwidth / by_size_hdd[128 * MB].bandwidth
    assert round(gap_4k) == 181
    assert round(gap_30k) == 32
    assert abs(gap_128m - 3.7) < 0.1
