"""Fig. 6: the three execution phases of the break-point model.

Reconstructs the illustration's setting (T = 60 MB/s, lambda = 4,
BW = 120 MB/s, so b = 2 and B = 8) and simulates a task set at increasing
``P``, showing: linear scaling up to the turning point, then a flat
I/O-bound regime.
"""

from conftest import run_once

from repro.analysis.report import render_series
from repro.cluster.cluster import Cluster
from repro.cluster.node import Node
from repro.core.bandwidth import EffectiveBandwidthTable
from repro.core.breakpoints import BreakPointAnalysis, ExecutionPhase
from repro.simulator.engine import SimulationEngine
from repro.simulator.task import ComputePhase, IoPhase, SimTask
from repro.storage.device import StorageDevice
from repro.units import GB, KB, MB, TB

CORE_SWEEP = (1, 2, 4, 8, 16, 32)
NUM_TASKS = 64
GOLDEN = 0.618033988749895


def _cluster():
    table = EffectiveBandwidthTable({4 * KB: 120 * MB})
    def device(name):
        return StorageDevice(name=name, kind="ssd", capacity_bytes=1 * TB,
                             read_table=table, write_table=table)
    node = Node(name="n0", num_cores=36, ram_bytes=128 * GB,
                hdfs_device=device("h"), local_device=device("l"))
    return Cluster(slaves=[node])


def _tasks():
    tasks = []
    for index in range(NUM_TASKS):
        scale = 1.0 + 0.2 * (2.0 * ((index * GOLDEN) % 1.0) - 1.0)
        tasks.append(
            SimTask(
                phases=(
                    IoPhase(role="local", total_bytes=60 * MB * scale,
                            request_size=4 * KB, is_write=False,
                            per_stream_cap=60 * MB),
                    ComputePhase(3.0 * scale),
                )
            )
        )
    return tasks


def test_fig6_three_phases(benchmark, emit):
    analysis = BreakPointAnalysis(
        per_core_throughput=60 * MB, bandwidth=120 * MB, lam=4.0
    )

    def sweep():
        cluster = _cluster()
        makespans = []
        for cores in CORE_SWEEP:
            engine = SimulationEngine(cluster, cores_per_node=cores)
            makespans.append(engine.run(_tasks()))
        return makespans

    makespans = run_once(benchmark, sweep)
    phases = [analysis.phase(cores).value for cores in CORE_SWEEP]
    emit("fig6_execution_phases", render_series(
        f"Fig. 6: makespan (s) vs P for T=60MB/s, lambda=4, BW=120MB/s"
        f" (b={analysis.b:.0f}, B={analysis.big_b:.0f})",
        "P", {"makespan (s)": makespans}, CORE_SWEEP)
        + "\nphases: " + ", ".join(
            f"P={c}:{p}" for c, p in zip(CORE_SWEEP, phases)))

    assert analysis.b == 2.0
    assert analysis.big_b == 8.0
    assert analysis.phase(2) is ExecutionPhase.NO_CONTENTION
    assert analysis.phase(8) is ExecutionPhase.CONTENTION_HIDDEN
    assert analysis.phase(16) is ExecutionPhase.IO_BOUND

    # Scaling holds until B: P=1 -> P=8 is ~8x.
    assert makespans[0] / makespans[3] > 5.0
    # Past B, more cores do not help.
    assert abs(makespans[4] - makespans[5]) / makespans[4] < 0.1
    # The I/O-bound regime sits at the transfer floor.
    floor = NUM_TASKS * 60 * MB / (120 * MB)
    assert makespans[5] >= floor * 0.999
    assert makespans[5] < floor * 1.35
