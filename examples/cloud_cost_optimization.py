#!/usr/bin/env python3
"""Section VI's case study: minimize genome-sequencing cost on the cloud.

Profiles GATK4 once, then explores the configuration space
``(vCPUs, disk types, disk sizes)`` with the Doppio model supplying the
runtime of every candidate — and compares the winner against the Apache
Spark (R1) and Cloudera (R2) provisioning recommendations.

Run:  python examples/cloud_cost_optimization.py
"""

from repro import Predictor, Profiler, make_gatk4_workload
from repro.analysis.report import render_series, render_table
from repro.cloud import (
    CostOptimizer,
    r1_spark_recommendation,
    r2_cloudera_recommendation,
)


def main() -> None:
    workload = make_gatk4_workload()
    print("Profiling GATK4 (four sample runs on three small nodes)...")
    predictor = Predictor(Profiler(workload, nodes=3).profile())

    hdfs_gb, local_gb = CostOptimizer.capacity_requirements(
        workload, num_workers=10
    )
    print(
        f"Per-node capacity floor: {hdfs_gb:.0f}GB HDFS,"
        f" {local_gb:.0f}GB Spark-local.\n"
    )
    optimizer = CostOptimizer(
        predictor, num_workers=10, min_hdfs_gb=hdfs_gb, min_local_gb=local_gb
    )

    # Fig. 15-style sweep: cost and runtime vs SSD local size.
    sizes = [50, 100, 200, 500, 1000, 2000]
    costs, runtimes = [], []
    for ssd_gb in sizes:
        evaluated = optimizer.evaluate(
            optimizer.make_config(16, "pd-standard", 1000, "pd-ssd", ssd_gb)
        )
        costs.append(evaluated.cost_dollars)
        runtimes.append(evaluated.runtime_seconds / 60)
    print(render_series(
        "Cost and runtime vs SSD Spark-local size (HDFS=1TB HDD, 16vCPU x10)",
        "SSD GB", {"cost $": costs, "runtime min": runtimes}, sizes,
        value_format="{:.2f}"))

    # Full search plus the two reference recommendations.
    print("\nSearching the full grid (vCPUs x types x sizes)...")
    result = optimizer.grid_search(vcpu_grid=(4, 8, 16, 32))
    r1 = optimizer.evaluate(r1_spark_recommendation())
    r2 = optimizer.evaluate(r2_cloudera_recommendation())

    rows = [
        ["model-chosen optimum", result.best.config.label(),
         f"{result.best.runtime_seconds / 60:.0f} min",
         f"${result.best.cost_dollars:.2f}"],
        ["R1 (Spark website)", r1.config.label(),
         f"{r1.runtime_seconds / 60:.0f} min", f"${r1.cost_dollars:.2f}"],
        ["R2 (Cloudera)", r2.config.label(),
         f"{r2.runtime_seconds / 60:.0f} min", f"${r2.cost_dollars:.2f}"],
    ]
    print("\n" + render_table(
        f"Winner across {result.num_evaluated} candidates",
        ["configuration", "details", "runtime", "cost"], rows))
    print(
        f"\nSavings: {result.savings_versus(r1) * 100:.0f}% vs R1,"
        f" {result.savings_versus(r2) * 100:.0f}% vs R2"
        " (paper: 38% and 57%)."
    )


if __name__ == "__main__":
    main()
