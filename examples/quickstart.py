#!/usr/bin/env python3
"""Quickstart: profile a workload once, predict it anywhere.

This walks the library's core loop in ~30 lines:

1. build the GATK4 workload model (the paper's flagship application);
2. run the four-sample-run profiling procedure on a small 3-slave cluster;
3. predict the runtime on larger clusters with different disks and core
   counts — no further measurement needed.

Run:  python examples/quickstart.py
"""

from repro import (
    HYBRID_CONFIGS,
    Predictor,
    Profiler,
    make_gatk4_workload,
    make_paper_cluster,
    measure_workload,
)
from repro.units import fmt_duration


def main() -> None:
    workload = make_gatk4_workload()
    print(f"Workload: {workload.name} — {workload.description}")

    print("\nProfiling with four sample runs on a 3-slave cluster...")
    report = Profiler(workload, nodes=3).profile()
    for stage in report.stages:
        print(
            f"  stage {stage.name:3s}: M={stage.num_tasks:6d}"
            f" t_avg={stage.t_avg:7.2f}s delta_scale={stage.delta_scale:6.2f}s"
        )

    predictor = Predictor(report)
    print("\nPredictions for a 10-slave cluster (and a simulation check):")
    for config in (HYBRID_CONFIGS[0], HYBRID_CONFIGS[3]):
        cluster = make_paper_cluster(10, config)
        for cores in (12, 36):
            predicted = predictor.predict_runtime(cluster, cores)
            measured = measure_workload(cluster, cores, workload).total_seconds
            error = abs(predicted - measured) / measured * 100
            print(
                f"  {config.shorthand:5s} P={cores:2d}:"
                f" model {fmt_duration(predicted):>9s},"
                f" simulated {fmt_duration(measured):>9s}"
                f"  (error {error:.1f}%)"
            )


if __name__ == "__main__":
    main()
