#!/usr/bin/env python3
"""Quickstart: profile a workload once, predict it anywhere.

This walks the library's core loop in ~30 lines:

1. build the GATK4 workload model (the paper's flagship application);
2. run the four-sample-run profiling procedure on a small 3-slave cluster;
3. predict the runtime on larger clusters with different disks and core
   counts — no further measurement needed.

Everything runs through ``repro.pipeline``: one :class:`Experiment` per
cluster configuration, all sharing a workload source and a result cache,
each ``run`` yielding a uniform record with the simulated ("exp") and
Equation-1 ("model") makespans side by side.

Run:  python examples/quickstart.py
"""

from repro import HYBRID_CONFIGS, make_gatk4_workload
from repro.pipeline import ClusterPlatform, Experiment, ResultCache, SpecSource
from repro.units import fmt_duration


def main() -> None:
    workload = make_gatk4_workload()
    print(f"Workload: {workload.name} — {workload.description}")

    cache = ResultCache()
    source = SpecSource(workload, profile_nodes=3)

    print("\nProfiling with four sample runs on a 3-slave cluster...")
    report = source.resolve(cache).report
    for stage in report.stages:
        print(
            f"  stage {stage.name:3s}: M={stage.num_tasks:6d}"
            f" t_avg={stage.t_avg:7.2f}s delta_scale={stage.delta_scale:6.2f}s"
        )

    print("\nPredictions for a 10-slave cluster (and a simulation check):")
    for config in (HYBRID_CONFIGS[0], HYBRID_CONFIGS[3]):
        experiment = Experiment(
            source, ClusterPlatform.from_config(config), cache=cache
        )
        for cores in (12, 36):
            result = experiment.run(10, cores)
            print(
                f"  {config.shorthand:5s} P={cores:2d}:"
                f" model {fmt_duration(result.predicted_seconds):>9s},"
                f" simulated {fmt_duration(result.measured_seconds):>9s}"
                f"  (error {result.error * 100:.1f}%)"
            )

    print(f"\ncache: {cache.stats_summary()}")


if __name__ == "__main__":
    main()
