#!/usr/bin/env python3
"""What-if analysis: is an SSD upgrade worth it for *your* workload?

The paper's punchline is that the answer depends on request sizes, not
peak bandwidths: shuffle-heavy applications gain ~6x from SSDs while
cached iterative jobs gain almost nothing.  This example profiles all six
workloads and prints each one's predicted HDD -> SSD speedup along with
the dominant bottleneck, i.e. the decision support a capacity planner
would want.

Run:  python examples/whatif_storage_upgrade.py   (takes a few minutes)
"""

from repro import (
    HYBRID_CONFIGS,
    Predictor,
    Profiler,
    make_gatk4_workload,
    make_logistic_regression_workload,
    make_pagerank_workload,
    make_svm_workload,
    make_terasort_workload,
    make_triangle_count_workload,
    make_paper_cluster,
)
from repro.analysis.report import render_table
from repro.workloads.logistic_regression import LARGE_DATASET


def main() -> None:
    workloads = [
        make_gatk4_workload(),
        make_logistic_regression_workload(num_slaves=10),
        make_logistic_regression_workload(LARGE_DATASET, num_slaves=10),
        make_svm_workload(),
        make_pagerank_workload(),
        make_triangle_count_workload(),
        make_terasort_workload(),
    ]
    labels = [
        "GATK4", "LR (small, cached)", "LR (large, persisted)",
        "SVM", "PageRank", "TriangleCount", "Terasort",
    ]

    ssd_cluster = make_paper_cluster(10, HYBRID_CONFIGS[0])
    hdd_cluster = make_paper_cluster(10, HYBRID_CONFIGS[3])

    rows = []
    for label, workload in zip(labels, workloads):
        print(f"profiling {label}...")
        predictor = Predictor(Profiler(workload, nodes=3).profile())
        hdd_prediction = predictor.predict(hdd_cluster, 36)
        ssd_prediction = predictor.predict(ssd_cluster, 36)
        speedup = hdd_prediction.t_app / ssd_prediction.t_app
        bottleneck = hdd_prediction.bottleneck_stage
        rows.append(
            [label,
             f"{hdd_prediction.t_app / 60:.0f} min",
             f"{ssd_prediction.t_app / 60:.0f} min",
             f"{speedup:.1f}x",
             f"{bottleneck.stage_name} ({bottleneck.bottleneck})"]
        )

    print("\n" + render_table(
        "Predicted HDD -> SSD upgrade effect (10 slaves, P=36)",
        ["workload", "on HDDs", "on SSDs", "speedup", "HDD bottleneck"],
        rows))
    print(
        "\nReading: cached iterative jobs barely move; shuffle-heavy and"
        " disk-persisted jobs gain multi-x — exactly the paper's Section V"
        " summary."
    )


if __name__ == "__main__":
    main()
