#!/usr/bin/env python3
"""Model your own application: from real execution to scaled prediction.

Demonstrates the full loop a library user would follow for a new Spark
application:

1. run a *small* version of the app for real on the functional RDD engine
   (word count with a groupByKey shuffle — real data, real grouping);
2. collect the executed stages' runtime profiles (task counts, shuffle
   bytes and geometry);
3. scale the observed profile to production size and convert it into a
   workload spec;
4. profile the spec with the four-sample-run procedure and predict the
   production runtime on candidate clusters.

Run:  python examples/custom_workload_model.py
"""

import dataclasses

from repro import (
    DoppioContext,
    HYBRID_CONFIGS,
    Predictor,
    Profiler,
    make_paper_cluster,
)
from repro.analysis.report import render_table
from repro.spark.stageinfo import profiles_to_workload
from repro.units import GB, MB, fmt_duration
from repro.workloads.generators import generate_labelled_points


def run_small_app() -> list:
    """A real mini run: tokenize text lines and count tokens by key."""
    sc = DoppioContext()
    lines = generate_labelled_points(4000, 8, seed=42)
    tokens = (
        sc.parallelize(lines, 16)
        .flat_map(str.split)
        .map(lambda token: (token[:4], 1))
    )
    counts = tokens.reduce_by_key(lambda a, b: a + b, 8)
    print(f"mini run: {counts.count()} distinct keys counted for real")
    return sc.stage_profiles


def scale_profile(profile, factor: float):
    """Scale an observed stage to production volume."""
    return dataclasses.replace(
        profile,
        num_tasks=max(1, int(profile.num_tasks * factor)),
        shuffle_write_bytes=profile.shuffle_write_bytes * factor,
        shuffle_read_bytes=profile.shuffle_read_bytes * factor,
        num_mappers=max(1, int(profile.num_mappers * factor)),
        num_reducers=max(1, int(profile.num_reducers * factor)),
        compute_seconds_per_task=2.0,  # measured per-task CPU at prod size
    )


def main() -> None:
    profiles = run_small_app()
    map_profile = next(p for p in profiles if p.shuffle_write_bytes > 0)

    # Scale the mini shuffle (a few hundred KB) up to a 200 GB production
    # job with the same geometry.
    factor = 200 * GB / map_profile.shuffle_write_bytes
    production_map = scale_profile(map_profile, factor)
    reduce_profile = dataclasses.replace(
        production_map,
        name="reduce-stage",
        num_tasks=production_map.num_reducers,
        shuffle_write_bytes=0.0,
        shuffle_read_bytes=production_map.shuffle_write_bytes,
        compute_seconds_per_task=4.0,
    )
    workload = profiles_to_workload(
        "wordcount-200GB",
        [production_map, reduce_profile],
        throughputs={"shuffle_write": 50 * MB, "shuffle_read": 60 * MB},
    )
    summary_rows = [
        [stage.name, stage.num_tasks,
         " ".join(f"{kind}:{total / GB:.0f}GB"
                  for kind, (total, _) in stage.channel_summary().items())]
        for stage in workload.stages
    ]
    print("\n" + render_table("Derived production workload",
                              ["stage", "tasks", "channels"], summary_rows))

    print("\nProfiling the derived workload and predicting production runs:")
    predictor = Predictor(Profiler(workload, nodes=3).profile())
    rows = []
    for config in (HYBRID_CONFIGS[0], HYBRID_CONFIGS[3]):
        for nodes in (5, 10, 20):
            cluster = make_paper_cluster(nodes, config)
            runtime = predictor.predict_runtime(cluster, 24)
            rows.append([config.shorthand, nodes, fmt_duration(runtime)])
    print(render_table("Predicted production runtimes (P=24)",
                       ["disks", "slaves", "runtime"], rows))


if __name__ == "__main__":
    main()
