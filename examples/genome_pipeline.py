#!/usr/bin/env python3
"""The GATK4 genome pipeline, analyzed the way Section III does.

Reproduces the motivation study: per-stage I/O sizes (Table IV), stage
runtimes under the four hybrid HDD/SSD placements (Fig. 2), the shuffle
geometry behind the 30 KB reads, and the break-point analysis explaining
which stages scale with cores.

Run:  python examples/genome_pipeline.py
"""

from repro import HYBRID_CONFIGS, make_gatk4_workload, make_paper_cluster
from repro.analysis.report import render_series, render_table
from repro.core.breakpoints import BreakPointAnalysis
from repro.storage.device import make_hdd, make_ssd
from repro.units import GB, KB, MB
from repro.workloads.gatk4 import Gatk4Parameters
from repro.workloads.runner import measure_workload


def show_table_iv(workload) -> None:
    kinds = ("hdfs_read", "shuffle_write", "shuffle_read", "hdfs_write")
    rows = [
        [stage.name] + [f"{stage.total_bytes(kind) / GB:.0f}" for kind in kinds]
        for stage in workload.stages
    ]
    print(render_table("I/O data size (GB) per stage (Table IV)",
                       ["stage", *kinds], rows))


def show_shuffle_geometry(params: Gatk4Parameters) -> None:
    plan = params.shuffle_plan
    print(
        f"\nShuffle geometry: M={plan.num_mappers} map tasks,"
        f" R={plan.num_reducers} reduce tasks.\n"
        f"Each reducer reads {plan.bytes_per_reducer / MB:.0f}MB spread over"
        f" {plan.num_mappers} map files -> {plan.read_request_size / KB:.0f}KB"
        f" per request ({plan.avgrq_sz_sectors():.0f} iostat sectors).\n"
        f"Mappers write {plan.write_request_size / MB:.0f}MB sorted chunks —"
        " which is why MD tolerates an HDD and BR/SF do not."
    )


def show_fig2(workload) -> None:
    results = {}
    for config in HYBRID_CONFIGS:
        cluster = make_paper_cluster(3, config)
        measurement = measure_workload(cluster, 36, workload)
        results[config.label] = [
            measurement.stage(name).makespan / 60 for name in ("MD", "BR", "SF")
        ]
    series = {
        label: values for label, values in results.items()
    }
    print("\n" + render_series(
        "Stage runtime (minutes), 3 slaves, P=36 (Fig. 2)",
        "config", series, ["MD", "BR", "SF"]))


def show_breakpoints(params: Gatk4Parameters) -> None:
    hdd, ssd = make_hdd(), make_ssd()
    request = params.shuffle_plan.read_request_size
    rows = []
    for device_name, device in (("HDD", hdd), ("SSD", ssd)):
        analysis = BreakPointAnalysis(
            per_core_throughput=params.shuffle_read_throughput,
            bandwidth=device.read_bandwidth(request),
            lam=params.br_shuffle_lambda,
        )
        rows.append(
            [f"BR shuffle read on {device_name}",
             f"{analysis.bandwidth / MB:.0f}MB/s",
             f"{analysis.b:.1f}", f"{analysis.big_b:.0f}",
             "scales to 36 cores" if analysis.scales_with_cores(36)
             else "I/O-bound past B"]
        )
    print("\n" + render_table(
        "Break points: when do more cores stop helping? (Section V-A)",
        ["operation", "BW@28KB", "b=BW/T", "B=lambda*b", "verdict"], rows))


def main() -> None:
    params = Gatk4Parameters()
    workload = make_gatk4_workload(params)
    print(f"{workload.name}: {workload.description}\n")
    show_table_iv(workload)
    show_shuffle_geometry(params)
    show_fig2(workload)
    show_breakpoints(params)


if __name__ == "__main__":
    main()
