#!/usr/bin/env python3
"""Prediction-driven cluster scheduling (the paper's intro use case).

A shared cluster receives a mixed batch of jobs.  FIFO makes small jobs
wait behind the genome pipeline; with Doppio's predicted runtimes the
scheduler can run shortest-predicted-job-first instead — no trial
executions needed — and cut the mean waiting time by more than half.

Run:  python examples/cluster_scheduler.py   (takes a couple of minutes)
"""

from repro import (
    HYBRID_CONFIGS,
    Predictor,
    Profiler,
    make_gatk4_workload,
    make_logistic_regression_workload,
    make_svm_workload,
    make_triangle_count_workload,
    make_paper_cluster,
    measure_workload,
)
from repro.analysis.report import render_table
from repro.schedule import Job, fifo_order, simulate_queue, spjf_order


def main() -> None:
    cluster = make_paper_cluster(10, HYBRID_CONFIGS[0])
    cores = 36
    submissions = [
        ("gatk4", make_gatk4_workload()),
        ("triangle-count", make_triangle_count_workload()),
        ("lr-small", make_logistic_regression_workload(num_slaves=10)),
        ("svm", make_svm_workload()),
    ]

    jobs = []
    for name, workload in submissions:
        print(f"profiling {name}...")
        predictor = Predictor(Profiler(workload, nodes=3).profile())
        predicted = predictor.predict_runtime(cluster, cores)
        true = measure_workload(cluster, cores, workload).total_seconds
        jobs.append(Job(name=name, true_runtime=true,
                        predicted_runtime=predicted))

    fifo = simulate_queue(jobs, fifo_order, "FIFO")
    spjf = simulate_queue(jobs, spjf_order, "SPJF")

    rows = []
    for result in (fifo, spjf):
        for scheduled in result.scheduled:
            rows.append(
                [result.policy, scheduled.job.name,
                 f"{scheduled.job.predicted_runtime / 60:.1f}",
                 f"{scheduled.start_time / 60:.1f}",
                 f"{scheduled.waiting_time / 60:.1f}"]
            )
    print("\n" + render_table(
        "Schedules (minutes)",
        ["policy", "job", "predicted", "start", "waited"], rows))
    print(
        f"\nmean waiting time: FIFO {fifo.mean_waiting_time / 60:.1f} min ->"
        f" SPJF {spjf.mean_waiting_time / 60:.1f} min"
        f" ({(1 - spjf.mean_waiting_time / fifo.mean_waiting_time) * 100:.0f}%"
        " less, with zero trial executions)"
    )


if __name__ == "__main__":
    main()
