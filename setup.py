"""Setup shim for environments without the ``wheel`` package.

Metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e . --no-build-isolation --no-use-pep517`` (the legacy
editable path) works offline.
"""

from setuptools import setup

setup()
